"""Bounded FIFO channels — the on-chip communication primitive.

HLS tools expose typed, bounded, single-producer/single-consumer queues
(Intel OpenCL *channels*, Xilinx *streams*).  FBLAS modules communicate
exclusively through them.  This module models a channel at cycle
granularity:

* bounded capacity (``depth``) — a full channel back-pressures its producer;
* *staged* writes — a value pushed at cycle ``t`` by a pipeline with latency
  ``L`` becomes visible to the consumer at cycle ``t + L``, which is how the
  simulator reproduces pipeline latency without simulating every register.
  In-flight values live in the producer's pipeline registers, not in the
  FIFO, so a push of ``k`` values with latency ``L`` is granted ``k * L``
  slots of *headroom* beyond the FIFO depth (a W-lane pipeline of depth L
  physically holds up to W*L results).  Matured values enter the FIFO only
  while it has space; the overflow waits staged, stalling the pipeline —
  the backpressure behaviour of a full HLS channel;
* occupancy statistics used by the MDAG analysis and tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice

import numpy as np

from .errors import ChannelError

__all__ = ["Channel", "ChannelError", "ChannelStats", "DEFAULT_CHANNEL_DEPTH"]

#: Default FIFO capacity used everywhere a depth is not given explicitly —
#: the engine's :meth:`~repro.fpga.engine.Engine.channel`, MDAG edges, and
#: the HLS-style helper kernels all share this single constant.
DEFAULT_CHANNEL_DEPTH = 64


@dataclass
class ChannelStats:
    """Lifetime counters for a channel, for I/O accounting and tests."""

    pushes: int = 0
    pops: int = 0
    max_occupancy: int = 0
    stalled_push_cycles: int = 0
    stalled_pop_cycles: int = 0


class Channel:
    """A bounded FIFO with latency staging.

    Parameters
    ----------
    name:
        Identifier used in reports and deadlock diagnostics.
    depth:
        Maximum number of elements the FIFO holds.  Staged (in-flight)
        elements count against the capacity, as they occupy skid-buffer
        space in a real design.
    """

    def __init__(self, name: str, depth: int = DEFAULT_CHANNEL_DEPTH):
        if depth < 1:
            raise ValueError(f"channel {name!r}: depth must be >= 1, got {depth}")
        self.name = name
        self.depth = depth
        self._fifo: deque = deque()
        # Staged values: list of (ready_cycle, value) kept sorted by arrival.
        self._staged: deque = deque()
        self.stats = ChannelStats()
        # Event sink (the wake-list scheduler) bound for the duration of an
        # event-mode run; None in dense mode, making every hook a no-op.
        self.events = None
        # Kernels blocked on this channel, registered by the scheduler:
        # pop waiters wake when data matures into the FIFO (on_data), push
        # waiters when a pop frees space (on_space).  Maturation moves
        # values from staging into the FIFO without changing their sum, so
        # it can never unblock a push.
        self._pop_waiters: list = []
        self._push_waiters: list = []
        # Cycle of the currently scheduled maturation event, for dedup.
        self._mature_at = None
        # Block runs staged by push_block during a bulk window: entries
        # [first_ready, lanes, array, consumed_offset].  Always empty
        # outside a BulkScheduler replay window.
        self._runs: list = []
        # Fault-injection hook (repro.faults.FaultInjector) intercepting
        # pushes; None outside an injected run, making push() fault-free.
        self.fault_hook = None

    def bind_events(self, sink) -> None:
        """Attach an event sink receiving on_staged/on_space/on_data.

        The sink must provide ``on_staged(channel, ready_cycle)`` (a push
        staged new values), ``on_space(channel)`` (a pop freed FIFO space)
        and ``on_data(channel)`` (maturation made values visible).  Pass
        ``None`` to detach.
        """
        self.events = sink

    # -- capacity ---------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Elements currently visible to the consumer."""
        return len(self._fifo)

    @property
    def in_flight(self) -> int:
        """Elements pushed but not yet visible (pipeline latency)."""
        return len(self._staged)

    def space(self, headroom: int = 0) -> int:
        """Free slots a producer may still push into.

        ``headroom`` is the extra capacity contributed by the producer's
        own pipeline registers (latency x lanes for the push at hand).
        """
        return self.depth + headroom - len(self._fifo) - len(self._staged)

    def can_push(self, count: int = 1, headroom: int = 0) -> bool:
        return self.space(headroom) >= count

    def can_pop(self, count: int = 1) -> bool:
        return len(self._fifo) >= count

    # -- data movement ----------------------------------------------------
    def push(self, values, ready_cycle: int, headroom: int = 0) -> None:
        """Stage ``values`` to become visible at ``ready_cycle``."""
        if self.fault_hook is not None:
            n0 = len(values)
            values = self.fault_hook.on_push(self, values)
            # A duplicated element may not fit the space the producer
            # proved before pushing; grant it skid-buffer headroom so the
            # fault perturbs the data stream, not the flow control.
            headroom += max(0, len(values) - n0)
        if not self.can_push(len(values), headroom):
            raise ChannelError(
                f"push of {len(values)} to full channel {self.name!r} "
                f"(occupancy={self.occupancy}, in_flight={self.in_flight}, "
                f"depth={self.depth})"
            )
        self._staged.extend((ready_cycle, v) for v in values)
        self.stats.pushes += len(values)
        if values and self.events is not None:
            self.events.on_staged(self, ready_cycle)

    def pop(self, count: int = 1) -> list:
        """Remove and return ``count`` visible elements."""
        if not self.can_pop(count):
            raise ChannelError(
                f"pop of {count} from channel {self.name!r} with only "
                f"{self.occupancy} visible elements"
            )
        fifo = self._fifo
        # Bulk drain: one islice copy instead of count popleft round trips.
        out = list(islice(fifo, count))
        if count == len(fifo):
            fifo.clear()
        else:
            for _ in range(count):
                fifo.popleft()
        self.stats.pops += count
        if self.events is not None:
            self.events.on_space(self)
        return out

    def peek(self):
        """Return the head element without removing it."""
        if not self._fifo:
            raise ChannelError(f"peek on empty channel {self.name!r}")
        return self._fifo[0]

    # -- block transfers (bulk steady-state windows) ------------------------
    #
    # During a replay window the BulkScheduler owns the channel: values
    # move as ndarrays in ring-buffer *runs* instead of per-element
    # (ready, value) tuples, and no capacity checks or events fire —
    # the scheduler has already proven the window is steady (every cycle
    # repeats the probe cycle exactly), so space and availability hold
    # by construction.  ``occupancy``/``space`` do not count run values;
    # nothing but the scheduler reads them mid-window, and
    # :meth:`end_window` restores exact cycle-level storage before any
    # other code runs.

    def push_block(self, values, lanes: int, first_ready: int) -> None:
        """Stage ``K * lanes`` values pushed over K consecutive cycles.

        Group ``j`` of ``lanes`` values becomes visible at
        ``first_ready + j`` — the same ready ramp K individual pushes at
        cycles ``t .. t+K-1`` with a fixed latency would have produced.
        """
        arr = values if isinstance(values, np.ndarray) else np.asarray(values)
        self._runs.append([first_ready, lanes, arr, 0])
        self.stats.pushes += len(arr)

    def pop_block(self, count: int, dtype=None) -> np.ndarray:
        """Drain ``count`` elements, in arrival order, as one ndarray.

        Sources are consumed in stream order: visible FIFO first, then
        staged values, then block runs.  Legality (the steady window
        delivers exactly these elements to the consumer, in this order)
        is the scheduler's proof obligation, not checked here.
        """
        need = count
        boxed = []
        fifo = self._fifo
        if fifo and need:
            take = min(need, len(fifo))
            boxed.extend(islice(fifo, take))
            if take == len(fifo):
                fifo.clear()
            else:
                for _ in range(take):
                    fifo.popleft()
            need -= take
        staged = self._staged
        if staged and need:
            take = min(need, len(staged))
            boxed.extend(v for _r, v in islice(staged, take))
            for _ in range(take):
                staged.popleft()
            need -= take
        parts = []
        if boxed:
            parts.append(np.asarray(boxed, dtype=dtype))
        runs = self._runs
        while need:
            if not runs:
                raise ChannelError(
                    f"pop_block of {count} from channel {self.name!r} "
                    f"exceeds the window's supply by {need}")
            run = runs[0]
            arr, off = run[2], run[3]
            take = min(need, len(arr) - off)
            part = arr[off:off + take]
            if dtype is not None:
                part = part.astype(dtype, copy=False)
            parts.append(part)
            run[3] = off + take
            need -= take
            if run[3] == len(arr):
                runs.pop(0)
        self.stats.pops += count
        if len(parts) == 1:
            out = parts[0]
            return out.astype(dtype, copy=False) if dtype is not None else out
        out = np.concatenate(parts)
        return out.astype(dtype, copy=False) if dtype is not None else out

    def end_window(self, cycle: int) -> None:
        """Fold leftover run values back into cycle-exact storage.

        Values due by ``cycle`` (the window's last executed cycle) enter
        the FIFO as maturation would have — in ready order, capped at
        ``depth`` — and the rest become ordinary staged tuples, so the
        channel leaves the window indistinguishable from one stepped
        cycle by cycle.
        """
        fifo, staged = self._fifo, self._staged
        while (staged and staged[0][0] <= cycle
               and len(fifo) < self.depth):
            fifo.append(staged.popleft()[1])
        for first_ready, lanes, arr, off in self._runs:
            m = len(arr)
            j = off
            while (j < m and first_ready + j // lanes <= cycle
                   and len(fifo) < self.depth and not staged):
                fifo.append(arr[j])
                j += 1
            if j < m:
                staged.extend((first_ready + jj // lanes, arr[jj])
                              for jj in range(j, m))
        self._runs.clear()

    # -- simulation hooks ---------------------------------------------------
    def mature(self, cycle: int) -> int:
        """Move due staged values into the FIFO, as far as space allows.

        Called by the engine at the start of every cycle.  Returns the
        number of values that became visible.  Values whose ready time has
        passed but that find the FIFO full stay staged (the producer's
        pipeline is stalled by backpressure) and enter on a later cycle.
        """
        moved = 0
        while (self._staged and self._staged[0][0] <= cycle
               and len(self._fifo) < self.depth):
            self._fifo.append(self._staged.popleft()[1])
            moved += 1
        if self.occupancy > self.stats.max_occupancy:
            self.stats.max_occupancy = self.occupancy
        if moved and self.events is not None:
            self.events.on_data(self)
        return moved

    def can_mature_later(self) -> bool:
        """True if a staged value could still enter the FIFO unaided.

        Used by deadlock detection: staged values destined for a full FIFO
        cannot make progress unless some kernel pops first.
        """
        return bool(self._staged) and len(self._fifo) < self.depth

    def next_maturity(self):
        """Earliest cycle a staged value becomes visible, or None."""
        return self._staged[0][0] if self._staged else None

    @property
    def drained(self) -> bool:
        """True when no data remains visible or in flight."""
        return not self._fifo and not self._staged

    def __len__(self) -> int:
        return len(self._fifo)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, depth={self.depth}, "
            f"occ={self.occupancy}, in_flight={self.in_flight})"
        )
