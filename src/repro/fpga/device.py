"""Device catalog and frequency/power models (Tables II and III).

Resource totals come straight from Table II of the paper.  Frequencies and
power draws of synthesized designs are *empirical* quantities that the
Intel toolchain reports; we model them with per-device calibration tables
(anchored at the paper's Table III/IV/V/VI numbers) plus a generic fallback
so that unseen configurations still get plausible estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

GB = 1_000_000_000


@dataclass(frozen=True)
class ResourceBudget:
    """One row of resources (totals or available-after-BSP)."""

    alms: int
    ffs: int
    m20ks: int
    dsps: int

    def fits(self, other: "ResourceBudget") -> bool:
        """True if ``other`` (a usage) fits in this budget."""
        return (other.alms <= self.alms and other.ffs <= self.ffs
                and other.m20ks <= self.m20ks and other.dsps <= self.dsps)


@dataclass(frozen=True)
class FpgaDevice:
    """An FPGA board as used in the paper's evaluation (Table II)."""

    name: str
    total: ResourceBudget
    available: ResourceBudget
    dram_banks: int
    dram_bank_bytes: int              # capacity per DDR module
    dram_bank_bandwidth: float        # bytes/sec per module
    hyperflex: bool                   # register retiming technology
    hardened_double: bool             # native double-precision DSP support
    #: Peak design frequency (Hz) for small/medium pipelines, with and
    #: without HyperFlex, calibrated on Table III.
    f_max_hyperflex: float
    f_max: float

    def bytes_per_cycle(self, frequency: float) -> int:
        """Peak DRAM bank bandwidth expressed in bytes per clock cycle."""
        return max(1, int(self.dram_bank_bandwidth / frequency))


#: Intel Arria 10 GX 1150 on a Bittware board (Table II, first row).
ARRIA10 = FpgaDevice(
    name="Arria 10 GX 1150",
    total=ResourceBudget(alms=427_000, ffs=1_700_000, m20ks=2_700, dsps=1_518),
    available=ResourceBudget(alms=392_000, ffs=1_500_000, m20ks=2_400,
                             dsps=1_518),
    dram_banks=2,
    dram_bank_bytes=8 * GB,
    dram_bank_bandwidth=17.0 * GB,
    hyperflex=False,
    hardened_double=False,
    f_max_hyperflex=222e6,   # no HyperFlex on Arria; ceiling observed 222 MHz
    f_max=222e6,
)

#: Intel Stratix 10 GX 2800 on a Bittware board (Table II, second row).
STRATIX10 = FpgaDevice(
    name="Stratix 10 GX 2800",
    total=ResourceBudget(alms=933_000, ffs=3_700_000, m20ks=11_700,
                         dsps=5_760),
    available=ResourceBudget(alms=692_000, ffs=2_800_000, m20ks=8_900,
                             dsps=4_468),
    dram_banks=4,
    dram_bank_bytes=8 * GB,
    dram_bank_bandwidth=19.2 * GB,
    hyperflex=True,
    hardened_double=False,
    f_max_hyperflex=370e6,
    f_max=270e6,
)

#: Xilinx Alveo U280 (HBM2) — the post-paper many-channel generation the
#: ROADMAP targets.  ``dram_banks`` counts HBM *pseudo-channels*: 8 GB of
#: HBM2 split into 32 independently-addressed 256 MB channels, ~460 GB/s
#: aggregate.  The resource row maps vendor units onto Table II's columns
#: (LUTs reported in the ``alms`` slot, BRAM36 blocks in ``m20ks``).
U280 = FpgaDevice(
    name="Alveo U280 HBM2",
    total=ResourceBudget(alms=1_304_000, ffs=2_607_000, m20ks=2_016,
                         dsps=9_024),
    available=ResourceBudget(alms=1_080_000, ffs=2_160_000, m20ks=1_812,
                             dsps=9_020),
    dram_banks=32,
    dram_bank_bytes=256 * 1024 * 1024,
    dram_bank_bandwidth=14.375 * GB,    # 460 GB/s / 32 pseudo-channels
    hyperflex=False,
    hardened_double=False,
    f_max_hyperflex=300e6,
    f_max=300e6,
)

DEVICES: Dict[str, FpgaDevice] = {
    "arria10": ARRIA10,
    "stratix10": STRATIX10,
    "u280": U280,
}


class FrequencyModel:
    """Estimate the clock frequency a design closes timing at.

    Anchored on the paper's measurements (Table III/IV/V/VI): small
    streaming pipelines reach the device's f_max (with HyperFlex on
    Stratix), while large systolic arrays close at a lower frequency that
    degrades with chip utilisation.
    """

    #: (device key, routine class, precision) -> MHz, from Table III.
    CALIBRATION: Dict[Tuple[str, str, str], float] = {
        ("arria10", "level1", "single"): 150e6,
        ("arria10", "level1", "double"): 150e6,
        ("arria10", "level2", "single"): 145e6,
        ("arria10", "level2", "double"): 132e6,
        ("arria10", "systolic", "single"): 197e6,
        ("arria10", "systolic", "double"): 222e6,
        ("stratix10", "level1", "single"): 358e6,
        ("stratix10", "level1", "double"): 366e6,
        ("stratix10", "level2", "single"): 347e6,
        ("stratix10", "level2", "double"): 347e6,
        ("stratix10", "systolic", "single"): 216e6,
        ("stratix10", "systolic", "double"): 260e6,
    }

    def __init__(self, device: FpgaDevice):
        self.device = device
        self._key = next(k for k, d in DEVICES.items() if d is device)

    def estimate(self, routine_class: str, precision: str = "single",
                 utilization: float = 0.0,
                 hyperflex: Optional[bool] = None) -> float:
        """Frequency in Hz.

        ``routine_class`` is one of ``level1``, ``level2``, ``level3``,
        ``systolic``.  ``utilization`` (0..1, fraction of the busiest
        resource) derates large designs; ``hyperflex=False`` disables the
        retiming boost on Stratix.
        """
        if routine_class == "level3":
            routine_class = "systolic"
        cal = self.CALIBRATION.get((self._key, routine_class, precision))
        if cal is None:
            cal = self.device.f_max
        use_hf = self.device.hyperflex if hyperflex is None else (
            hyperflex and self.device.hyperflex)
        if not use_hf and self.device.hyperflex:
            # Calibrated Stratix level-1/2 numbers assume HyperFlex on.
            cal = min(cal, self.device.f_max)
        # Routing congestion derate: designs above ~70% utilisation lose
        # frequency roughly linearly (observed on the big systolic arrays).
        derate = 1.0 - 0.35 * max(0.0, utilization - 0.7)
        return cal * derate


class PowerModel:
    """Board power estimate (Watts), affine in chip utilisation.

    Calibrated on Tables III-VI: the Arria board idles near 46 W and peaks
    around 52 W; the Stratix board spans roughly 58-70.5 W.  The paper
    measures whole-board power via ``aocl``, hence the large static share.
    """

    STATIC = {"arria10": 46.0, "stratix10": 57.5, "u280": 65.0}
    DYNAMIC = {"arria10": 7.5, "stratix10": 15.0, "u280": 35.0}

    def __init__(self, device: FpgaDevice):
        self.device = device
        self._key = next(k for k, d in DEVICES.items() if d is device)

    def estimate(self, utilization: float) -> float:
        """Power in Watts for a design using ``utilization`` of the chip."""
        u = min(max(utilization, 0.0), 1.0)
        return self.STATIC[self._key] + self.DYNAMIC[self._key] * u
