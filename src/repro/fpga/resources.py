"""Resource-usage estimation, calibrated on the paper's Tables I and III.

The paper's own space/time analysis (Sec. IV-A) reduces computational
resource consumption to *linear functions of the circuit work* CW, with
tool- and device-specific coefficients:

* SCAL (map):        LUT = 49·CW,  FF = 96·CW,  DSP = CW,    CW = W
* DOT (map-reduce):  LUT ≈ 18·CW,  FF ≈ 40·CW,  DSP = CW/2,  CW = 2W

We implement exactly that model, with the coefficients of Table I, plus a
constant per-module interface overhead and per-device infrastructure terms
fitted on Table III.  Double precision has no hardened DSP support on
either device, so it costs 4 DSPs per operation and roughly an order of
magnitude more soft logic (Sec. VI-B) — the DP coefficients below are
fitted on the DDOT/DGEMV/DGEMM rows of Table III.

All coefficients live in module-level dictionaries so that tests and the
benchmarks can reference (and challenge) the calibration explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import FpgaDevice, ResourceBudget

#: Bytes of one M20K on-chip RAM block (20 Kbit).
M20K_BYTES = 2560

#: Latency (cycles) of a hardened single-precision add/multiply on the
#: evaluated devices (Sec. IV-A: "the latency for both addition and
#: multiplication is 6 clock cycles").
FLOAT_OP_LATENCY = 6


@dataclass(frozen=True)
class ResourceUsage:
    """Estimated chip resources of one synthesized module."""

    luts: int
    ffs: int
    m20ks: int
    dsps: int

    @property
    def alms(self) -> int:
        """ALM estimate: an ALM packs roughly one LUT plus carry logic."""
        return int(self.luts * 1.05)

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(self.luts + other.luts, self.ffs + other.ffs,
                             self.m20ks + other.m20ks, self.dsps + other.dsps)

    def scaled(self, k: float) -> "ResourceUsage":
        return ResourceUsage(int(self.luts * k), int(self.ffs * k),
                             int(self.m20ks * k), int(self.dsps * k))

    def budget(self) -> ResourceBudget:
        return ResourceBudget(alms=self.alms, ffs=self.ffs,
                              m20ks=self.m20ks, dsps=self.dsps)

    def utilization(self, device: FpgaDevice) -> float:
        """Fraction of the busiest resource on ``device`` (available)."""
        a = device.available
        return max(self.alms / a.alms, self.ffs / a.ffs,
                   self.m20ks / a.m20ks, self.dsps / a.dsps)

    def fits(self, device: FpgaDevice) -> bool:
        return device.available.fits(self.budget())


# ---------------------------------------------------------------------------
# Calibration tables
# ---------------------------------------------------------------------------

#: Per-unit-of-circuit-work coefficients, single precision (Table I fits).
#: ``lut_base`` is the constant control-logic term visible in the DOT
#: column (174 LUTs at W=2, where the linear term alone gives 72).
SP_COEFF = {
    # routine class: (lut/CW, ff/CW, dsp/CW, CW per lane)
    "map":        dict(lut=49.0, ff=96.0, dsp=1.0, cw_per_lane=1,
                       lut_base=0),
    "map_reduce": dict(lut=18.5, ff=40.0, dsp=0.5, cw_per_lane=2,
                       lut_base=105),
}

#: Double precision is emulated in soft logic: ~4 DSPs and an order of
#: magnitude more LUT/FF per lane (fitted on DDOT/DGEMV, Table III).
DP_COEFF = {
    "map":        dict(lut=900.0, ff=1500.0, dsp=4.0, cw_per_lane=1,
                       lut_base=0),
    "map_reduce": dict(lut=470.0, ff=800.0, dsp=2.0, cw_per_lane=2,
                       lut_base=400),
}

#: Constant per-module interface/control overhead (fitted on Table III
#: level-1 rows: e.g. SDOT W=256 uses 331 DSPs = 256 + overhead).
MODULE_OVERHEAD = dict(lut=800, ff=2500, dsp=72)

#: One DRAM interface module (read or write helper kernel): an address
#: generator plus burst buffers.  Streaming compositions save these —
#: the paper measures up to -40% resources vs the non-streamed designs.
INTERFACE_MODULE = dict(lut=1800, ff=4200, m20k=8, dsp=4)


def interface_module_resources() -> "ResourceUsage":
    """Resources of one read/write DRAM interface kernel."""
    return ResourceUsage(luts=INTERFACE_MODULE["lut"],
                         ffs=INTERFACE_MODULE["ff"],
                         m20ks=INTERFACE_MODULE["m20k"],
                         dsps=INTERFACE_MODULE["dsp"])

#: Per-device M20K infrastructure (BSP, channel skid buffers).  The Stratix
#: BSP reserves on the order of a thousand blocks even for tiny designs
#: (Table III: SDOT uses 1028 M20K on Stratix vs 1 on Arria).
INFRA_M20K = {"Arria 10 GX 1150": 1, "Stratix 10 GX 2800": 950}

#: Systolic GEMM per-PE coefficients (fitted on Table III GEMM rows).
GEMM_PE_COEFF = {
    "single": dict(alm=100.0, ff=290.0, dsp=1.0),
    "double": dict(alm=1400.0, ff=3100.0, dsp=4.0),
}
#: Extra DSPs for GEMM feeders/drain helpers.
GEMM_HELPER_DSPS = {"single": 66, "double": 120}
#: Tile buffers are double-buffered and replicated for banked access.
GEMM_TILE_BUFFER_FACTOR = 1.7


def _elem_size(precision: str) -> int:
    if precision == "single":
        return 4
    if precision == "double":
        return 8
    raise ValueError(f"unknown precision {precision!r}")


def _coeff(routine_class: str, precision: str) -> dict:
    table = SP_COEFF if precision == "single" else DP_COEFF
    if routine_class not in table:
        raise ValueError(
            f"routine class must be 'map' or 'map_reduce', got "
            f"{routine_class!r}")
    return table[routine_class]


# ---------------------------------------------------------------------------
# Estimators
# ---------------------------------------------------------------------------

def level1_resources(routine_class: str, width: int,
                     precision: str = "single",
                     include_overhead: bool = False,
                     device: FpgaDevice | None = None) -> ResourceUsage:
    """Resources of a Level-1 module with vectorization width ``width``.

    ``routine_class`` is ``"map"`` (SCAL, AXPY, COPY...) or ``"map_reduce"``
    (DOT, NRM2, ASUM...).  With ``include_overhead`` the constant interface
    logic and per-device M20K infrastructure are added (that is what the
    compiler reports for a standalone synthesized module, Table III);
    without it the estimate is the bare inner-loop circuit (Table I).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    c = _coeff(routine_class, precision)
    cw = c["cw_per_lane"] * width
    usage = ResourceUsage(luts=int(c["lut"] * cw) + c["lut_base"],
                          ffs=int(c["ff"] * cw),
                          m20ks=0, dsps=math.ceil(c["dsp"] * cw))
    if include_overhead:
        usage = usage + ResourceUsage(
            luts=MODULE_OVERHEAD["lut"], ffs=MODULE_OVERHEAD["ff"],
            m20ks=INFRA_M20K.get(device.name, 1) if device else 1,
            dsps=MODULE_OVERHEAD["dsp"])
    return usage


def level1_latency(routine_class: str, width: int,
                   precision: str = "single") -> int:
    """Pipeline latency (cycles) of a Level-1 inner-loop circuit.

    Map circuits have constant depth (one multiplier): Table I reports 50
    cycles for SCAL at every width.  Map-reduce circuits add a log-depth
    adder tree: DOT grows from 82 cycles at W=2 to 105 at W=64, well fitted
    by ``78 + 4.5·log2(W)``.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    scale = 1.0 if precision == "single" else 1.6
    if routine_class == "map":
        return int(50 * scale)
    return int((78 + 4.5 * math.log2(max(width, 2))) * scale)


def level2_resources(width: int, tile_size: int,
                     precision: str = "single",
                     device: FpgaDevice | None = None) -> ResourceUsage:
    """Resources of a tiled Level-2 module (GEMV-like).

    The compute datapath is a DOT-style map-reduce circuit of width W; the
    tile buffers for the reused vector blocks occupy M20Ks, replicated for
    W-wide parallel access (fitted on Table III: SGEMV W=256 uses 210
    M20Ks on Arria, DGEMV W=128 uses 216).
    """
    base = level1_resources("map_reduce", width, precision)
    esize = _elem_size(precision)
    tile_bytes = 2 * tile_size * esize        # x-block and y-block buffers
    banked = int(0.8 * width * (esize // 4))  # replication for unrolled access
    m20ks = banked + math.ceil(tile_bytes / M20K_BYTES)
    if device is not None:
        m20ks += INFRA_M20K.get(device.name, 1)
    extra = ResourceUsage(luts=MODULE_OVERHEAD["lut"] * 2,
                          ffs=MODULE_OVERHEAD["ff"] * 2,
                          m20ks=m20ks, dsps=28)
    return base + extra


def gemm_systolic_resources(pr: int, pc: int, tile_r: int, tile_c: int,
                            precision: str = "single",
                            device: FpgaDevice | None = None) -> ResourceUsage:
    """Resources of a PR x PC systolic GEMM with memory tile TR x TC.

    DSPs scale with the number of PEs (4x in double precision, emulated);
    M20Ks hold the A/B/C memory tiles, double-buffered (fitted on Table
    III: the Stratix SGEMM with a 40x80 array and 960x960 tiles uses 7767
    M20Ks, 86% of the device).
    """
    if pr < 1 or pc < 1:
        raise ValueError("systolic array dimensions must be >= 1")
    if tile_r % pr or tile_c % pc:
        raise ValueError(
            f"memory tile ({tile_r}x{tile_c}) must be a multiple of the "
            f"compute grid ({pr}x{pc})")
    c = GEMM_PE_COEFF[precision]
    pes = pr * pc
    esize = _elem_size(precision)
    tile_bytes = (tile_r * tile_c + tile_r * tile_c + tile_r * tile_c) * esize
    m20ks = math.ceil(GEMM_TILE_BUFFER_FACTOR * tile_bytes / M20K_BYTES)
    if device is not None:
        m20ks += INFRA_M20K.get(device.name, 1)
    return ResourceUsage(
        luts=int(c["alm"] * pes / 1.05),
        ffs=int(c["ff"] * pes),
        m20ks=m20ks,
        dsps=int(c["dsp"] * pes) + GEMM_HELPER_DSPS[precision],
    )


def fully_unrolled_resources(flops: int, precision: str = "single") -> ResourceUsage:
    """Resources of a fully unrolled routine performing ``flops`` ops.

    Used for the batched tiny-matrix designs of Table V, where the whole
    routine body is one combinational pipeline that accepts a new problem
    every cycle.
    """
    c = SP_COEFF["map_reduce"] if precision == "single" else DP_COEFF["map_reduce"]
    return ResourceUsage(luts=int(c["lut"] * flops), ffs=int(c["ff"] * flops),
                         m20ks=0, dsps=math.ceil(c["dsp"] * flops))
