"""Simulation error types and protocol limits, shared by both engine cores.

The dense stepper (:mod:`repro.fpga.engine`) and the event-driven
wake-list scheduler (:mod:`repro.fpga.scheduler`) raise the same
exceptions with the same semantics — that is the contract the
differential tests pin down.  They live here so the two modules do not
import each other; :mod:`repro.fpga.engine` re-exports them under their
historical names.
"""

from __future__ import annotations

from typing import Dict

#: Safety bound on ops a kernel may perform within one simulated cycle.
#: Real kernels perform O(W) pops/pushes per cycle; hitting this bound means
#: a kernel body forgot to yield ``Clock()``.
MAX_OPS_PER_CYCLE = 1_000_000


class SimulationError(RuntimeError):
    """Raised on kernel protocol violations."""


class DeadlockError(RuntimeError):
    """Raised when the composition can make no further progress.

    Attributes
    ----------
    blocked:
        Mapping of kernel name to a human-readable description of the op it
        is blocked on.
    cycle:
        The simulated cycle at which the deadlock was detected.
    """

    def __init__(self, cycle: int, blocked: Dict[str, str]):
        self.cycle = cycle
        self.blocked = blocked
        detail = "; ".join(f"{k}: {v}" for k, v in blocked.items())
        super().__init__(f"deadlock at cycle {cycle}: {detail}")
