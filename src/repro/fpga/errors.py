"""Simulation error hierarchy, hang forensics records and protocol limits.

Every exception the reproduction raises derives from :class:`ReproError`
(itself a ``RuntimeError`` so historical ``except RuntimeError`` catchers
keep working).  The hierarchy:

``ReproError``
    ├── ``SimulationError``       — kernel protocol violations, exhausted
    │        │                      cycle budgets
    │        └── (also) ``LivelockError`` (multiple inheritance, below)
    ├── ``ChannelError``          — FIFO protocol violations
    ├── ``FaultError``            — errors raised *by injected faults*
    │        └── ``TransientFaultError`` — retrying may succeed
    │                 ├── ``KernelCrashError`` — injected kernel crash
    │                 └── ``EccError``         — uncorrectable DRAM ECC
    └── ``HangError``             — the run cannot (or will not) finish;
             │                      carries a structured :class:`HangReport`
             ├── ``DeadlockError`` — provably no further progress
             └── ``LivelockError`` — progress-free beyond the watchdog
                                     window, or ``max_cycles`` exhausted
                                     (also a ``SimulationError``: the
                                     historical type of a cycle-budget
                                     trip)

The hang exceptions are raised identically by the dense stepper
(:mod:`repro.fpga.engine`), the event-driven wake-list scheduler
(:mod:`repro.fpga.scheduler`) and the bulk tier (:mod:`repro.fpga.bulk`)
— that is the contract the differential tests pin down.  They live here
so the engine modules do not import each other; :mod:`repro.fpga.engine`
re-exports them under their historical names.

:class:`HangReport` (and its row types) also live here because the hang
exceptions carry one; the *builder* — wait-for graph, channel pressure,
analyzer verdict — is :func:`repro.faults.forensics.build_hang_report`,
imported lazily by the engine cores at raise time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Safety bound on ops a kernel may perform within one simulated cycle.
#: Real kernels perform O(W) pops/pushes per cycle; hitting this bound means
#: a kernel body forgot to yield ``Clock()``.
MAX_OPS_PER_CYCLE = 1_000_000

#: Schema tag of :meth:`HangReport.to_dict` documents.
HANG_REPORT_SCHEMA = "repro.hangreport/1"


class ReproError(RuntimeError):
    """Base class of every error the reproduction raises."""


class SimulationError(ReproError):
    """Raised on kernel protocol violations and exhausted cycle budgets."""


class ChannelError(ReproError):
    """Raised on FIFO protocol violations (pop from empty, push to full...)."""


class DeadlineExceeded(ReproError):
    """A wall-clock deadline bounded the request and expired.

    Raised by :func:`repro.faults.run_with_recovery` when ``deadline_s``
    runs out across retries, and by the service layer
    (:mod:`repro.service`) when a request's deadline expires while it is
    still queued.  Deliberately *not* a :class:`SimulationError` (a
    deadline is a caller policy, not a simulator failure, so the
    recovery ladder neither retries nor demotes it) — the run ledger
    classifies it as the distinct outcome ``"deadline"``.
    """

    def __init__(self, message: str, deadline_s: Optional[float] = None,
                 elapsed_s: Optional[float] = None):
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
        super().__init__(message)


class FaultError(ReproError):
    """Base class of errors raised by *injected* faults (:mod:`repro.faults`)."""


class TransientFaultError(FaultError):
    """An injected fault whose effect is transient — a retry may succeed.

    Host-level recovery policies (:mod:`repro.faults.recovery`) catch this
    class: bounded retry with backoff is the appropriate response, exactly
    as it would be for an SEU on a real board.
    """


class KernelCrashError(TransientFaultError):
    """An injected fault crashed a kernel mid-run."""

    def __init__(self, kernel: str, work_cycle: int):
        self.kernel = kernel
        self.work_cycle = work_cycle
        super().__init__(
            f"injected crash in kernel {kernel!r} at its work cycle "
            f"{work_cycle}")


class EccError(TransientFaultError):
    """An injected uncorrectable DRAM ECC event."""

    def __init__(self, buffer: str, bank: Optional[int], cycle: int):
        self.buffer = buffer
        self.bank = bank
        self.cycle = cycle
        where = f"bank {bank}" if bank is not None else "interleaved"
        super().__init__(
            f"uncorrectable ECC event in buffer {buffer!r} ({where}) at "
            f"cycle {cycle}")


# ---------------------------------------------------------------------------
# Hang forensics records
# ---------------------------------------------------------------------------

@dataclass
class KernelState:
    """One kernel's situation at the moment the watchdog tripped."""

    kernel: str
    #: ``"blocked-pop"`` | ``"blocked-push"`` | ``"sleeping"`` |
    #: ``"runnable"`` | ``"not-started"`` | ``"done"``
    state: str
    channel: Optional[str] = None
    #: Elements the blocking op needs (pop count or push size).
    wants: int = 0
    #: Elements available to it (FIFO occupancy for a pop, free space for
    #: a push).
    available: int = 0
    #: Cycle the kernel has been blocked since (None when not blocked).
    since: Optional[int] = None
    stall_cycles: int = 0
    active_cycles: int = 0

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel, "state": self.state,
            "channel": self.channel, "wants": self.wants,
            "available": self.available, "since": self.since,
            "stall_cycles": self.stall_cycles,
            "active_cycles": self.active_cycles,
        }


@dataclass
class ChannelPressure:
    """One channel's fill level at the moment the watchdog tripped."""

    channel: str
    occupancy: int
    in_flight: int
    depth: int

    @property
    def fill(self) -> float:
        """Visible-occupancy fraction of capacity."""
        return self.occupancy / self.depth if self.depth else 0.0

    def to_dict(self) -> dict:
        return {
            "channel": self.channel, "occupancy": self.occupancy,
            "in_flight": self.in_flight, "depth": self.depth,
            "fill": round(self.fill, 4),
        }


@dataclass
class HangReport:
    """Structured forensics for a hung (deadlocked / livelocked) run.

    Built by :func:`repro.faults.forensics.build_hang_report` and carried
    by :class:`DeadlockError` / :class:`LivelockError`; renderable as text
    (:meth:`render_text`) or JSON (:meth:`to_dict`).
    """

    #: ``"deadlock"`` | ``"livelock"`` | ``"timeout"``
    kind: str
    cycle: int
    #: One-line human explanation of what tripped.
    reason: str = ""
    kernels: List[KernelState] = field(default_factory=list)
    #: Wait-for edges ``(waiter, waited_on, via_channel)``: the kernel
    #: that must act before the waiter can proceed.
    wait_for: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Kernel cycles in the wait-for graph (each a closed chain) — a
    #: non-empty list is the classic circular-wait certificate.
    wait_cycles: List[List[str]] = field(default_factory=list)
    channels: List[ChannelPressure] = field(default_factory=list)
    #: Static-analyzer diagnostics (``Diagnostic.to_dict`` form) for the
    #: hung engine, when its kernels carry port annotations.
    analysis: List[dict] = field(default_factory=list)
    #: Correlation id of the request that hung (the ambient
    #: :func:`repro.telemetry.ledger.current_run_id` at build time), so
    #: the forensics document joins against its run-ledger record.
    run_id: Optional[str] = None

    # -- derived views -----------------------------------------------------
    @property
    def blocked(self) -> Dict[str, str]:
        """Kernel -> short description of the blocking op (legacy shape)."""
        out = {}
        for ks in self.kernels:
            if ks.state == "blocked-pop":
                out[ks.kernel] = (
                    f"pop({ks.wants}) from {ks.channel!r} "
                    f"(occupancy={ks.available})")
            elif ks.state == "blocked-push":
                out[ks.kernel] = (
                    f"push({ks.wants}) to {ks.channel!r} "
                    f"(space={ks.available})")
            elif ks.state != "done":
                out[ks.kernel] = ks.state.replace("-", " ")
        return out

    def analysis_codes(self) -> List[str]:
        """Distinct diagnostic codes the analyzer attached, sorted."""
        return sorted({d["code"] for d in self.analysis})

    def fullest_channels(self, n: int = 3) -> List[ChannelPressure]:
        return sorted(self.channels, key=lambda c: -c.fill)[:n]

    def emptiest_channels(self, n: int = 3) -> List[ChannelPressure]:
        return sorted(self.channels, key=lambda c: c.fill)[:n]

    # -- rendering ---------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": HANG_REPORT_SCHEMA,
            "kind": self.kind,
            "cycle": self.cycle,
            "reason": self.reason,
            "kernels": [k.to_dict() for k in self.kernels],
            "wait_for": [list(e) for e in self.wait_for],
            "wait_cycles": [list(c) for c in self.wait_cycles],
            "channels": [c.to_dict() for c in self.channels],
            "analysis": list(self.analysis),
            "run_id": self.run_id,
        }

    def render_text(self) -> str:
        header = f"{self.kind} at cycle {self.cycle}: {self.reason}"
        if self.run_id is not None:
            header += f" [run {self.run_id}]"
        lines = [header]
        live = [k for k in self.kernels if k.state != "done"]
        if live:
            lines.append("kernels:")
            w = max(len(k.kernel) for k in live)
            for k in live:
                where = ""
                if k.channel is not None:
                    where = (f" on {k.channel!r} (wants {k.wants}, "
                             f"available {k.available}"
                             + (f", since cycle {k.since}"
                                if k.since is not None else "") + ")")
                lines.append(
                    f"  {k.kernel:>{w}}  {k.state}{where}  "
                    f"[active={k.active_cycles} stalled={k.stall_cycles}]")
        if self.wait_for:
            lines.append("wait-for graph:")
            for a, b, ch in self.wait_for:
                lines.append(f"  {a} -> {b}  (via {ch!r})")
        for cyc in self.wait_cycles:
            lines.append("circular wait: " + " -> ".join(cyc + cyc[:1]))
        if self.channels:
            full = self.fullest_channels()
            empty = [c for c in self.emptiest_channels()
                     if c not in full]
            lines.append("channel pressure:")
            for c in full:
                lines.append(
                    f"  fullest  {c.channel:20s} {c.occupancy}/{c.depth} "
                    f"(+{c.in_flight} in flight)")
            for c in empty:
                lines.append(
                    f"  emptiest {c.channel:20s} {c.occupancy}/{c.depth} "
                    f"(+{c.in_flight} in flight)")
        if self.analysis:
            lines.append("static analysis verdict:")
            for d in self.analysis:
                lines.append(
                    f"  {d['code']} [{d['severity']}] {d['message']}")
        return "\n".join(lines)


class HangError(ReproError):
    """Base of the watchdog trips: the run cannot (or will not) finish.

    Attributes
    ----------
    cycle:
        The simulated cycle at which the hang was declared.
    blocked:
        Mapping of kernel name to a human-readable description of the op
        it is blocked on (historical shape, kept for compatibility).
    report:
        The structured :class:`HangReport` (None only when a raiser could
        not build forensics, e.g. in a unit test constructing the error
        directly).
    """

    def __init__(self, cycle: int, blocked: Dict[str, str],
                 report: Optional[HangReport] = None,
                 message: Optional[str] = None):
        self.cycle = cycle
        self.blocked = blocked
        self.report = report
        if message is None:
            detail = "; ".join(f"{k}: {v}" for k, v in blocked.items())
            message = f"hang at cycle {cycle}: {detail}"
        super().__init__(message)


class DeadlockError(HangError):
    """Raised when the composition can make no further progress.

    This is precisely the "stalls forever" condition of invalid module
    compositions in Sec. V of the FBLAS paper.
    """

    def __init__(self, cycle: int, blocked: Dict[str, str],
                 report: Optional[HangReport] = None):
        detail = "; ".join(f"{k}: {v}" for k, v in blocked.items())
        super().__init__(cycle, blocked, report,
                         f"deadlock at cycle {cycle}: {detail}")


class LivelockError(HangError, SimulationError):
    """Raised when the watchdog gives up on a run that *is* doing work.

    Two triggers, distinguished by ``report.kind`` (and ``self.trigger``):

    ``"livelock"``
        No channel element moved and no kernel finished for the whole
        progress window, while kernels kept executing cycles — the design
        spins without ever completing.
    ``"timeout"``
        The cycle budget (``max_cycles``) elapsed.  The message keeps the
        historical ``"exceeded ... cycles"`` wording, and the class also
        derives from :class:`SimulationError` (the type this condition
        used to raise), so existing catchers keep working.
    """

    def __init__(self, cycle: int, blocked: Dict[str, str],
                 report: Optional[HangReport] = None,
                 trigger: str = "livelock", budget: int = 0):
        self.trigger = trigger
        if trigger == "timeout":
            message = (f"simulation exceeded {budget} cycles without "
                       f"finishing (watchdog at cycle {cycle})")
        else:
            message = (f"livelock at cycle {cycle}: no channel progress "
                       f"for {budget} cycles; "
                       + "; ".join(f"{k}: {v}" for k, v in blocked.items()))
        super().__init__(cycle, blocked, report, message)
