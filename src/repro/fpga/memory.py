"""Off-chip memory model: channels, placement, bandwidth, I/O accounting.

The model generalizes from the paper's DDR4 boards — 2 (Arria) or 4
(Stratix) modules — to *N pseudo-channels* so the same machinery covers
HBM-class parts (the U280 catalog entry exposes 32 pseudo-channels).
Vocabulary: a *channel* is the unit of independent bandwidth; on the
paper's DDR boards one DDR bank is one channel, so ``bank`` and
``channel`` are interchangeable here and the legacy ``bank`` spelling is
kept throughout the API.  A :class:`Placement` says which channels a
buffer's traffic is allowed to draw from:

* ``Placement.single(c)`` — the buffer lives in one channel (the manual
  allocation the Stratix BSP forces; two kernels touching the same
  channel contend for its bandwidth, the effect behind the paper's
  Sec. VI-C AXPYDOT speedup going from 3x to 4x);
* ``Placement.striped(channels)`` — the buffer's traffic spreads over an
  explicit set of K channels, drawing from each member's budget;
* ``Placement.channel_range(start, stop)`` — striped over the contiguous
  block ``[start, stop)``, the shape HBM placement tools emit.

The model stays deliberately simple and countable:

* each channel grants at most ``bytes_per_cycle`` bytes per simulated
  cycle; striped buffers draw from their member channels' budgets;
* a buffer allocated with neither a bank nor a placement is round-robin
  placed (or pooled across all channels when ``interleaving`` is on);
* every element moved is counted, giving the *number of memory I/O
  operations* the paper's Sec. V analysis reasons about.

Interface kernels (:func:`read_kernel`, :func:`write_kernel`) bridge DRAM
and channels: they are the circles of the paper's MDAG figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .kernel import Clock, Pop, Push
from .pattern import DramTraffic, PatternedGenerator, StaticPattern


@dataclass(frozen=True)
class Placement:
    """Which memory channels a DRAM buffer may draw bandwidth from.

    ``kind`` is one of ``"single"``, ``"striped"`` or ``"range"``;
    ``channels`` is the ordered tuple of member channel indices.  Use the
    constructors rather than the raw dataclass so the invariants hold.
    """

    kind: str
    channels: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("single", "striped", "range"):
            raise ValueError(f"unknown placement kind {self.kind!r}")
        if not self.channels:
            raise ValueError("placement needs at least one channel")
        if len(set(self.channels)) != len(self.channels):
            raise ValueError("placement channels must be distinct")
        if any(c < 0 for c in self.channels):
            raise ValueError("placement channels must be non-negative")
        if self.kind == "single" and len(self.channels) != 1:
            raise ValueError("single placement takes exactly one channel")

    @classmethod
    def single(cls, channel: int) -> "Placement":
        """The buffer lives entirely in one channel."""
        return cls("single", (int(channel),))

    @classmethod
    def striped(cls, channels: Iterable[int]) -> "Placement":
        """The buffer's traffic spreads over an explicit channel set."""
        return cls("striped", tuple(int(c) for c in channels))

    @classmethod
    def channel_range(cls, start: int, stop: int) -> "Placement":
        """Striped over the contiguous channel block ``[start, stop)``."""
        if stop <= start:
            raise ValueError("empty channel range")
        return cls("range", tuple(range(int(start), int(stop))))

    def describe(self) -> str:
        """Compact human label (``ch3``, ``striped[0,2]``, ``range[0:4]``)."""
        if self.kind == "single":
            return f"ch{self.channels[0]}"
        if self.kind == "range":
            return f"range[{self.channels[0]}:{self.channels[-1] + 1}]"
        return "striped[" + ",".join(str(c) for c in self.channels) + "]"


@dataclass
class BankStats:
    bytes_read: int = 0
    bytes_written: int = 0
    denied_cycles: int = 0
    #: Cycles in which this bank granted at least one byte.
    busy_cycles: int = 0
    #: ECC events recorded against this bank (injected by repro.faults).
    ecc_events: int = 0

    def to_dict(self) -> dict:
        return {
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "denied_cycles": self.denied_cycles,
            "busy_cycles": self.busy_cycles,
            "ecc_events": self.ecc_events,
        }


class DramBuffer:
    """A named allocation in device DRAM.

    ``data`` is the backing numpy array (the "device memory").  ``bank`` is
    the channel index for single-channel buffers, or ``None`` when the
    buffer is interleaved (pooled) or striped over several channels; the
    full story lives in ``placement`` (``None`` means pooled/interleaved).
    """

    def __init__(self, name: str, data: np.ndarray, bank: Optional[int],
                 placement: Optional[Placement] = None):
        if placement is None and bank is not None:
            placement = Placement.single(bank)
        if placement is not None and placement.kind == "single":
            bank = placement.channels[0]
        self.name = name
        self.data = data
        self.bank = bank
        self.placement = placement
        self.elements_read = 0
        self.elements_written = 0

    @property
    def itemsize(self) -> int:
        return self.data.itemsize

    @property
    def num_elements(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = ("interleaved" if self.placement is None
                 else self.placement.describe())
        return f"DramBuffer({self.name!r}, {self.data.shape}, {where})"


class DramModel:
    """N-channel DRAM/HBM with per-channel per-cycle bandwidth budgets.

    Parameters
    ----------
    num_banks:
        Number of memory channels on the board (DDR modules on the
        paper's boards, pseudo-channels on HBM parts; ``num_channels``
        is an alias).
    bytes_per_cycle:
        Peak bytes one channel can move per FPGA clock cycle (channel
        bandwidth divided by design frequency).
    interleaving:
        When True, buffers allocated without an explicit bank or
        placement are striped across all channels and draw from the
        pooled budget.
    """

    def __init__(self, num_banks: int = 4, bytes_per_cycle: int = 64,
                 interleaving: bool = False, stride_penalty: float = 2.0,
                 device: Optional[str] = None):
        if num_banks < 1:
            raise ValueError("need at least one DRAM bank")
        if bytes_per_cycle < 1:
            raise ValueError("bytes_per_cycle must be positive")
        if stride_penalty < 1.0:
            raise ValueError("stride_penalty must be >= 1")
        self.num_banks = num_banks
        self.bytes_per_cycle = bytes_per_cycle
        self.interleaving = interleaving
        #: Device-catalog identity of the board this DRAM belongs to.
        #: Participates in the structural ``plan_key`` so a schedule
        #: certified against one device is never replayed on another.
        self.device_label = (device if device is not None
                             else f"generic-dram-{num_banks}"
                                  f"x{bytes_per_cycle}")
        #: Budget multiplier charged for non-contiguous accesses: strided
        #: bursts waste DRAM row activations, so a gather of k elements
        #: costs ``stride_penalty * k`` elements of budget (the effect
        #: behind the paper's note that striped accesses inferred as
        #: unaligned cost the HyperFlex optimization).
        self.stride_penalty = stride_penalty
        self.buffers: Dict[str, DramBuffer] = {}
        self.bank_stats = [BankStats() for _ in range(num_banks)]
        self._budget = [0] * num_banks
        self._pool_budget = 0
        self._next_bank = 0
        self._cycle = 0
        # Last cycle each bank was charged a busy cycle (so several
        # grants in one cycle count once).
        self._busy_mark = [-1] * num_banks
        # Per-channel raw grants of the most recent _grant call, so the
        # read/write wrappers can attribute useful bytes per channel.
        self._last_grants: List[Tuple[int, int]] = []
        # Fault-injection hook (repro.faults.FaultInjector); when set,
        # begin_cycle lets it flip DRAM bits, raise ECC events and cap
        # bank budgets for the cycle.  None outside an injected run.
        self.fault_hook = None
        self.begin_cycle(0)

    @property
    def num_channels(self) -> int:
        """Alias: one DDR bank is one channel; HBM exposes many."""
        return self.num_banks

    # -- allocation ---------------------------------------------------------
    def allocate(self, name: str, shape, dtype=np.float32,
                 bank: Optional[int] = None,
                 placement: Optional[Placement] = None) -> DramBuffer:
        """Allocate a zero-initialised buffer."""
        return self.bind(name, np.zeros(shape, dtype=dtype), bank,
                         placement=placement)

    def bind(self, name: str, data: np.ndarray,
             bank: Optional[int] = None,
             placement: Optional[Placement] = None) -> DramBuffer:
        """Place an existing array in DRAM (copying host data to device).

        ``placement`` pins the buffer to an explicit channel set;
        ``bank=k`` is shorthand for ``Placement.single(k)``.  With
        neither, the buffer is round-robin placed (or pooled when
        ``interleaving`` is on).
        """
        if name in self.buffers:
            raise ValueError(f"duplicate buffer name {name!r}")
        if placement is not None:
            if bank is not None and placement != Placement.single(bank):
                raise ValueError(
                    f"buffer {name!r}: bank={bank} contradicts placement "
                    f"{placement.describe()}")
            for c in placement.channels:
                if not (0 <= c < self.num_banks):
                    raise ValueError(
                        f"placement channel {c} out of range "
                        f"[0,{self.num_banks})")
        elif bank is not None:
            if not (0 <= bank < self.num_banks):
                raise ValueError(
                    f"bank {bank} out of range [0,{self.num_banks})")
        elif not self.interleaving:
            # Round-robin placement, mirroring manual allocation on the
            # Stratix board where interleaving is disabled.
            bank = self._next_bank
            self._next_bank = (self._next_bank + 1) % self.num_banks
        buf = DramBuffer(name, np.array(data, copy=True), bank, placement)
        self.buffers[name] = buf
        return buf

    def release(self, name: str) -> None:
        """Drop a bound buffer, freeing its name for rebinding.

        Long-lived device contexts that churn through per-request
        buffers (e.g. service workers) must release them: checkpoints
        snapshot *every* bound buffer, so leaking one per request makes
        checkpoint capture grow without bound.  Releasing an unknown
        name raises ``KeyError``; kernels holding views of a released
        buffer keep their (now unbound) storage alive.
        """
        del self.buffers[name]

    # -- per-cycle bandwidth ------------------------------------------------
    def begin_cycle(self, cycle: int) -> None:
        """Reset bandwidth budgets; called by the engine each clock edge."""
        if cycle < self._cycle:
            # A new engine run restarted the clock; the busy marks refer
            # to the previous run's cycle numbers.
            for b in range(self.num_banks):
                self._busy_mark[b] = -1
        self._cycle = cycle
        for b in range(self.num_banks):
            self._budget[b] = self.bytes_per_cycle
        self._pool_budget = self.num_banks * self.bytes_per_cycle
        if self.fault_hook is not None:
            self.fault_hook.on_memory_cycle(self, cycle)

    def _grant(self, buf: DramBuffer, nbytes: int) -> int:
        self._last_grants = []
        pl = buf.placement
        if pl is not None and len(pl.channels) > 1:
            # Striped/range placement: draw from each member channel's
            # remaining budget in order until the request is met.
            granted = 0
            need = nbytes
            for c in pl.channels:
                take = min(need, self._budget[c])
                if take > 0:
                    self._budget[c] -= take
                    self._pool_budget = max(0, self._pool_budget - take)
                    if self._busy_mark[c] != self._cycle:
                        self._busy_mark[c] = self._cycle
                        self.bank_stats[c].busy_cycles += 1
                    self._last_grants.append((c, take))
                    granted += take
                    need -= take
                if need == 0:
                    break
            if granted == 0 and nbytes > 0:
                for c in pl.channels:
                    self.bank_stats[c].denied_cycles += 1
        elif buf.bank is None:
            granted = min(nbytes, self._pool_budget)
            self._pool_budget -= granted
        else:
            granted = min(nbytes, self._budget[buf.bank])
            self._budget[buf.bank] -= granted
            # Interleaved traffic shares the same physical pins.
            self._pool_budget = max(0, self._pool_budget - granted)
            if granted == 0:
                self.bank_stats[buf.bank].denied_cycles += 1
            else:
                self._last_grants.append((buf.bank, granted))
                if self._busy_mark[buf.bank] != self._cycle:
                    self._busy_mark[buf.bank] = self._cycle
                    self.bank_stats[buf.bank].busy_cycles += 1
        return granted

    def request_read(self, buf: DramBuffer, nbytes: int,
                     contiguous: bool = True) -> int:
        """Grant up to ``nbytes`` of read budget this cycle.

        Non-contiguous (gather) accesses are charged ``stride_penalty``x
        budget per useful byte, halving the effective bandwidth at the
        default penalty.
        """
        factor = 1.0 if contiguous else self.stride_penalty
        granted = int(self._grant(buf, int(nbytes * factor)) // factor)
        for c, raw in self._last_grants:
            self.bank_stats[c].bytes_read += int(raw // factor)
        return granted

    def request_write(self, buf: DramBuffer, nbytes: int,
                      contiguous: bool = True) -> int:
        factor = 1.0 if contiguous else self.stride_penalty
        granted = int(self._grant(buf, int(nbytes * factor)) // factor)
        for c, raw in self._last_grants:
            self.bank_stats[c].bytes_written += int(raw // factor)
        return granted

    # -- accounting ---------------------------------------------------------
    def placement_summary(self) -> dict:
        """Compact description of where every buffer lives.

        The run ledger stamps this on each :class:`RunRecord` so fleet
        reports can split results by device and memory layout.
        """
        by_kind: Dict[str, int] = {}
        placements: Dict[str, str] = {}
        for name, buf in self.buffers.items():
            kind = ("interleaved" if buf.placement is None
                    else buf.placement.kind)
            by_kind[kind] = by_kind.get(kind, 0) + 1
            placements[name] = ("interleaved" if buf.placement is None
                                else buf.placement.describe())
        return {
            "device": self.device_label,
            "channels": self.num_banks,
            "buffers": len(self.buffers),
            "by_kind": by_kind,
            "placements": placements,
        }

    @property
    def total_elements_moved(self) -> int:
        """Total memory I/O operations (element reads + writes) so far."""
        return sum(b.elements_read + b.elements_written
                   for b in self.buffers.values())


# ---------------------------------------------------------------------------
# Interface kernels (the MDAG "circle" nodes)
# ---------------------------------------------------------------------------

def read_kernel(mem: DramModel, buf: DramBuffer, ch, width: int = 1,
                order: Optional[Iterable[int]] = None, repeat: int = 1):
    """Stream ``buf`` into ``ch``, ``width`` elements per cycle at most.

    ``order`` is an iterable of flat indices defining the streaming order
    (e.g. a tiled schedule from :mod:`repro.streaming.tiling`); by default
    the buffer is streamed linearly.  ``repeat`` replays the whole order
    that many times (the "vector must be replayed" case of Sec. III-B).

    The linear path carries a :class:`~repro.fpga.pattern.StaticPattern`
    (one full-width contiguous burst per cycle while the bank keeps
    granting it), so bulk mode can fast-forward it; an explicit ``order``
    keeps the general index-at-a-time generator and is always
    event-stepped.  An order that *is* the linear order — a unit-stride
    range covering the whole buffer, as the host API's stride plumbing
    emits for ``inc == 1`` — is normalized to the patterned linear path,
    so host-level routines stay certifiable in the common case.
    """
    if (isinstance(order, range) and order.start == 0 and order.step == 1
            and len(order) == buf.num_elements):
        order = None
    if order is not None:
        return _read_kernel_ordered(mem, buf, ch, width, order, repeat)
    return _read_kernel_linear(mem, buf, ch, width, repeat)


def _read_kernel_ordered(mem: DramModel, buf: DramBuffer, ch, width,
                         order, repeat):
    itemsize = buf.itemsize
    flat = buf.data.reshape(-1)
    for _ in range(repeat):
        it: Iterator[int] = iter(order)
        pending: list = []
        exhausted = False
        while pending or not exhausted:
            while not exhausted and len(pending) < width:
                try:
                    pending.append(next(it))
                except StopIteration:
                    exhausted = True
            if not pending:
                break
            contiguous = all(b == a + 1 for a, b in zip(pending, pending[1:]))
            granted = mem.request_read(buf, len(pending) * itemsize,
                                       contiguous=contiguous) // itemsize
            if granted > 0:
                vals = tuple(flat[i] for i in pending[:granted])
                buf.elements_read += granted
                yield Push(ch, vals, 1)
                del pending[:granted]
            yield Clock()


class _LinearReadState:
    """Shared cursor of the linear read kernel: the generator and the
    pattern's ``block`` advance the same fields."""

    __slots__ = ("pass_no", "base", "plen")

    def __init__(self):
        self.pass_no = 0
        self.base = 0            # flat index of the oldest pending element
        self.plen = 0            # granted-but-unsent elements (pending)


def _read_kernel_linear(mem: DramModel, buf: DramBuffer, ch, width, repeat):
    itemsize = buf.itemsize
    flat = buf.data.reshape(-1)
    n_el = buf.num_elements
    st = _LinearReadState()

    def gen():
        while st.pass_no < repeat:
            while st.plen or st.base + st.plen < n_el:
                take = min(width - st.plen, n_el - st.base - st.plen)
                if take > 0:
                    st.plen += take
                granted = mem.request_read(
                    buf, st.plen * itemsize, contiguous=True) // itemsize
                if granted > 0:
                    vals = tuple(flat[st.base:st.base + granted])
                    buf.elements_read += granted
                    yield Push(ch, vals, 1)
                    st.base += granted
                    st.plen -= granted
                yield Clock()
            st.pass_no += 1
            st.base = 0
            st.plen = 0

    def ready():
        # A partial grant leaves residue in the burst register; the next
        # cycles are then not statically full-width — fall back.
        if st.plen:
            return 0
        return (n_el - st.base) // width

    def block(k, _ins):
        base = st.base
        moved = k * width
        st.base = base + moved
        buf.elements_read += moved
        return [flat[base:base + moved]]

    pat = StaticPattern(
        writes=((ch, width, 1),), ii=1, ready=ready, block=block,
        dram=(DramTraffic(mem, buf, width, "read"),),
        write_totals=(n_el * repeat,))
    return PatternedGenerator(gen(), pat)


def write_kernel(mem: DramModel, buf: DramBuffer, ch, count: int,
                 width: int = 1, order: Optional[Iterable[int]] = None):
    """Drain ``count`` elements from ``ch`` into ``buf``.

    ``order`` gives the flat destination index for each received element
    (default: linear).  Each cycle the kernel stores whatever the channel
    has delivered (up to ``width`` elements) within the bank's bandwidth
    grant, so partial grants and a slower producer do not halve the write
    rate.

    Like :func:`read_kernel`, the linear path is pattern-annotated for
    bulk mode; an explicit ``order`` is always event-stepped — except a
    unit-stride range starting at 0 (the linear order spelled out, as
    :meth:`repro.streaming.tiling.MatrixSchedule.indices` produces for
    full-width row bands), which is normalized to the patterned path.
    """
    if (isinstance(order, range) and order.start == 0 and order.step == 1
            and len(order) == count):
        order = None
    if order is not None:
        return _write_kernel_ordered(mem, buf, ch, count, width, order)
    return _write_kernel_linear(mem, buf, ch, count, width)


def _write_kernel_ordered(mem: DramModel, buf: DramBuffer, ch, count,
                          width, order):
    itemsize = buf.itemsize
    flat = buf.data.reshape(-1)
    it: Iterator[int] = iter(order)
    received = 0
    pending: list = []
    while received < count or pending:
        # Top up the staging register with whatever is already visible;
        # block for at least one element when empty (avoids busy-spin).
        if received < count and len(pending) < width:
            avail = min(ch.occupancy, width - len(pending),
                        count - received)
            if avail == 0 and not pending:
                avail = 1
            if avail > 0:
                vals = yield Pop(ch, avail)
                if avail == 1:
                    vals = [vals]
                pending.extend(vals)
                received += avail
        granted = mem.request_write(buf, len(pending) * itemsize) // itemsize
        if granted > 0:
            for v in pending[:granted]:
                flat[next(it)] = v
            buf.elements_written += granted
            del pending[:granted]
        yield Clock()


class _LinearWriteState:
    __slots__ = ("received", "pos")

    def __init__(self):
        self.received = 0
        self.pos = 0             # next linear store index


def _write_kernel_linear(mem: DramModel, buf: DramBuffer, ch, count, width):
    itemsize = buf.itemsize
    flat = buf.data.reshape(-1)
    st = _LinearWriteState()
    pending: list = []

    def gen():
        while st.received < count or pending:
            if st.received < count and len(pending) < width:
                avail = min(ch.occupancy, width - len(pending),
                            count - st.received)
                if avail == 0 and not pending:
                    avail = 1
                if avail > 0:
                    vals = yield Pop(ch, avail)
                    if avail == 1:
                        vals = [vals]
                    pending.extend(vals)
                    st.received += avail
            granted = mem.request_write(
                buf, len(pending) * itemsize) // itemsize
            if granted > 0:
                for j, v in enumerate(pending[:granted]):
                    flat[st.pos + j] = v
                buf.elements_written += granted
                st.pos += granted
                del pending[:granted]
            yield Clock()

    def ready():
        if pending:
            return 0
        return (count - st.received) // width

    def block(k, ins):
        moved = k * width
        arr = ins[0]
        for j in range(moved):
            flat[st.pos + j] = arr[j]
        buf.elements_written += moved
        st.received += moved
        st.pos += moved
        return []

    pat = StaticPattern(
        reads=((ch, width),), ii=1, ready=ready, block=block,
        dram=(DramTraffic(mem, buf, width, "write"),),
        read_totals=(count,))
    return PatternedGenerator(gen(), pat)
