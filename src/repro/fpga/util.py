"""On-chip data sources and sinks.

The paper's single-module evaluation (Sec. VI-B) generates input data
directly on the FPGA "to test the scaling behavior of the memory bound
applications ... considering vectorization width that can exploit memory
interfaces faster than the one offered by the testbed".  These kernels play
that role: they feed/drain channels at ``width`` elements per cycle without
consuming DRAM bandwidth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .kernel import Clock, Pop, Push


def source_kernel(ch, data: Sequence, width: int = 1, repeat: int = 1):
    """Push ``data`` into ``ch``, up to ``width`` elements per cycle.

    ``repeat`` replays the whole sequence (vector replay, Sec. III-B).
    """
    n = len(data)
    for _ in range(repeat):
        i = 0
        while i < n:
            chunk = min(width, n - i)
            yield Push(ch, tuple(data[i:i + chunk]), 1)
            yield Clock()
            i += chunk


def sink_kernel(ch, count: int, width: int = 1, out: Optional[List] = None):
    """Pop ``count`` elements from ``ch``; append them to ``out`` if given."""
    remaining = count
    while remaining > 0:
        chunk = min(width, remaining)
        vals = yield Pop(ch, chunk)
        if chunk == 1:
            vals = [vals]
        if out is not None:
            out.extend(vals)
        yield Clock()
        remaining -= chunk


def scalar_sink(ch, out: List):
    """Pop a single element (e.g. a DOT result) into ``out``."""
    val = yield Pop(ch, 1)
    out.append(val)
    yield Clock()


def forward_kernel(ch_in, ch_out, count: int, width: int = 1):
    """Copy ``count`` elements from ``ch_in`` to ``ch_out`` (a wire)."""
    remaining = count
    while remaining > 0:
        chunk = min(width, remaining)
        vals = yield Pop(ch_in, chunk)
        if chunk == 1:
            vals = (vals,)
        yield Push(ch_out, tuple(vals), 1)
        yield Clock()
        remaining -= chunk


def duplicate_kernel(ch_in, outs: Sequence, count: int, width: int = 1):
    """Fan a stream out to several consumers (one producer, many readers).

    Models sharing one interface module between modules that read the same
    data, as in the BICG composition where both GEMVs read matrix A.
    """
    remaining = count
    while remaining > 0:
        chunk = min(width, remaining)
        vals = yield Pop(ch_in, chunk)
        if chunk == 1:
            vals = (vals,)
        else:
            vals = tuple(vals)
        for ch_out in outs:
            yield Push(ch_out, vals, 1)
        yield Clock()
        remaining -= chunk
