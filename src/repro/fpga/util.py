"""On-chip data sources and sinks.

The paper's single-module evaluation (Sec. VI-B) generates input data
directly on the FPGA "to test the scaling behavior of the memory bound
applications ... considering vectorization width that can exploit memory
interfaces faster than the one offered by the testbed".  These kernels play
that role: they feed/drain channels at ``width`` elements per cycle without
consuming DRAM bandwidth.

Each streaming helper carries a :class:`~repro.fpga.pattern.StaticPattern`
so the bulk engine can fast-forward its steady phase: the generator and the
pattern's ``block()`` share one cursor object, and the generator updates
that cursor *before* yielding ``Clock`` (which emits no ops, so the
observable op sequence is unchanged) — at every cycle boundary the cursor
therefore describes exactly the iterations still to run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .kernel import Clock, Pop, Push
from .pattern import PatternedGenerator, StaticPattern


class _Cursor:
    """Shared mutable loop state for a patterned helper kernel."""

    __slots__ = ("done", "pass_no")

    def __init__(self):
        self.done = 0             # elements fully processed (current pass)
        self.pass_no = 0


def source_kernel(ch, data: Sequence, width: int = 1, repeat: int = 1):
    """Push ``data`` into ``ch``, up to ``width`` elements per cycle.

    ``repeat`` replays the whole sequence (vector replay, Sec. III-B).
    """
    n = len(data)
    st = _Cursor()

    def gen():
        while st.pass_no < repeat:
            while st.done < n:
                chunk = min(width, n - st.done)
                yield Push(ch, tuple(data[st.done:st.done + chunk]), 1)
                st.done += chunk
                yield Clock()
            st.pass_no += 1
            st.done = 0

    def ready():
        return (n - st.done) // width

    def block(k, _ins):
        base = st.done
        moved = k * width
        st.done = base + moved
        return [data[base:base + moved]]

    pat = StaticPattern(writes=((ch, width, 1),), ii=1,
                        ready=ready, block=block,
                        write_totals=(n * repeat,))
    return PatternedGenerator(gen(), pat)


def sink_kernel(ch, count: int, width: int = 1, out: Optional[List] = None):
    """Pop ``count`` elements from ``ch``; append them to ``out`` if given."""
    st = _Cursor()

    def gen():
        while st.done < count:
            chunk = min(width, count - st.done)
            vals = yield Pop(ch, chunk)
            if chunk == 1:
                vals = [vals]
            if out is not None:
                out.extend(vals)
            st.done += chunk
            yield Clock()

    def ready():
        return (count - st.done) // width

    def block(k, ins):
        moved = k * width
        if out is not None:
            out.extend(list(ins[0]))
        st.done += moved
        return []

    pat = StaticPattern(reads=((ch, width),), ii=1,
                        ready=ready, block=block,
                        read_totals=(count,))
    return PatternedGenerator(gen(), pat)


def scalar_sink(ch, out: List):
    """Pop a single element (e.g. a DOT result) into ``out``."""
    val = yield Pop(ch, 1)
    out.append(val)
    yield Clock()


def forward_kernel(ch_in, ch_out, count: int, width: int = 1):
    """Copy ``count`` elements from ``ch_in`` to ``ch_out`` (a wire)."""
    st = _Cursor()

    def gen():
        while st.done < count:
            chunk = min(width, count - st.done)
            vals = yield Pop(ch_in, chunk)
            if chunk == 1:
                vals = (vals,)
            yield Push(ch_out, tuple(vals), 1)
            st.done += chunk
            yield Clock()

    def ready():
        return (count - st.done) // width

    def block(k, ins):
        st.done += k * width
        return [ins[0]]

    pat = StaticPattern(reads=((ch_in, width),),
                        writes=((ch_out, width, 1),), ii=1,
                        ready=ready, block=block,
                        read_totals=(count,), write_totals=(count,))
    return PatternedGenerator(gen(), pat)


def merge_kernel(inputs: Sequence, ch_out, schedule, width: int = 1):
    """Merge several lane streams into one, block by block.

    ``schedule`` is a sequence of ``(lane_index, count)`` pairs: pop
    ``count`` elements from ``inputs[lane_index]``, forward them to
    ``ch_out``, then move to the next entry.  The sharded GEMV/GEMM
    builders use this to reassemble per-lane row tiles into the global
    row order, so the merged stream is bitwise identical to the
    single-lane stream.

    The active read port changes from block to block, so no single
    static pattern covers the loop: the pattern is declare-only (ports
    and totals for the analyzer; always event-stepped, which is cheap —
    the merge only moves output elements, a sliver of the matrix
    traffic).
    """
    inputs = tuple(inputs)
    schedule = tuple((int(lane), int(count)) for lane, count in schedule)
    for lane, count in schedule:
        if not (0 <= lane < len(inputs)):
            raise ValueError(f"merge schedule lane {lane} out of range")
        if count < 1:
            raise ValueError("merge schedule counts must be positive")
    read_totals = [0] * len(inputs)
    for lane, count in schedule:
        read_totals[lane] += count
    total = sum(read_totals)

    def gen():
        for lane, count in schedule:
            ch_in = inputs[lane]
            done = 0
            while done < count:
                chunk = min(width, count - done)
                vals = yield Pop(ch_in, chunk)
                if chunk == 1:
                    vals = (vals,)
                yield Push(ch_out, tuple(vals), 1)
                done += chunk
                yield Clock()

    pat = StaticPattern.declare(
        reads=tuple((ch, width) for ch in inputs),
        writes=((ch_out, width, 1),), ii=1,
        read_totals=tuple(read_totals), write_totals=(total,))
    return PatternedGenerator(gen(), pat)


def duplicate_kernel(ch_in, outs: Sequence, count: int, width: int = 1):
    """Fan a stream out to several consumers (one producer, many readers).

    Models sharing one interface module between modules that read the same
    data, as in the BICG composition where both GEMVs read matrix A.
    """
    outs = tuple(outs)
    st = _Cursor()

    def gen():
        while st.done < count:
            chunk = min(width, count - st.done)
            vals = yield Pop(ch_in, chunk)
            if chunk == 1:
                vals = (vals,)
            else:
                vals = tuple(vals)
            for ch_out in outs:
                yield Push(ch_out, vals, 1)
            st.done += chunk
            yield Clock()

    def ready():
        return (count - st.done) // width

    def block(k, ins):
        st.done += k * width
        # One physical stream copied to every consumer: the same array can
        # back every channel's run — readers never mutate popped blocks.
        return [ins[0]] * len(outs)

    pat = StaticPattern(reads=((ch_in, width),),
                        writes=tuple((o, width, 1) for o in outs), ii=1,
                        ready=ready, block=block,
                        read_totals=(count,),
                        write_totals=(count,) * len(outs))
    return PatternedGenerator(gen(), pat)
