"""Static per-cycle op patterns — the contract behind ``mode="bulk"``.

A kernel generator describes *behaviour*; a :class:`StaticPattern`
describes the **shape** of that behaviour in steady state: which
channels the kernel pops and pushes every initiation, how many lanes
per port, at what initiation interval and write latency.  The bulk
scheduler (:mod:`repro.fpga.bulk`) uses the pattern to replay many
steady-state cycles arithmetically instead of resuming the generator
once per cycle.

The contract a pattern-carrying generator must honour:

* while ``ready() > 0`` the generator is suspended at an iteration
  boundary (its steady-loop ``Clock``) and its *next* ``ready()``
  iterations each perform exactly one ``Pop`` per read port (``lanes``
  values), one ``Push`` per write port (``lanes`` values, the declared
  latency) — in declaration order — followed by ``Clock(ii)``;
* ``block(k, ins)`` advances the kernel's shared state by ``k`` full
  iterations, consuming ``k * lanes`` input values per read port (the
  ``ins`` arrays) and returning one ndarray of ``k * lanes`` output
  values per write port, **bit-identical** to what ``k`` scalar
  iterations would have produced;
* after ``block(k, ...)``, resuming the generator continues from
  iteration boundary ``+k`` — i.e. the generator reads its loop state
  from the same shared cursor ``block`` mutates.

Kernels whose steady loop is not statically regular (tiled level-2
module generators, the reordering routers) use
:meth:`StaticPattern.declare`: the ports are still documented for
analysis/telemetry, but ``ready()`` is constantly 0 so the bulk
scheduler always falls back to exact event stepping for them.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["DramTraffic", "PatternedGenerator", "StaticPattern"]


class DramTraffic:
    """Per-iteration DRAM traffic of a patterned memory kernel.

    ``kind`` is ``"read"`` or ``"write"``; ``elements`` is the number of
    buffer elements moved per iteration (always a full burst in steady
    state — a partially granted burst leaves residue in the kernel's
    pending list, which drives ``ready()`` to 0 and forces fallback).
    """

    __slots__ = ("mem", "buf", "elements", "kind")

    def __init__(self, mem, buf, elements: int, kind: str):
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
        self.mem = mem
        self.buf = buf
        self.elements = elements
        self.kind = kind


class StaticPattern:
    """Steady-state port/rate signature of a kernel generator.

    Parameters
    ----------
    reads:
        ``(channel, lanes)`` pairs popped once per iteration, in op order.
    writes:
        ``(channel, lanes, latency)`` triples pushed once per iteration,
        in op order; ``latency=None`` means the kernel's default latency
        (resolved by the engine when the kernel is registered).
    ii:
        Initiation interval of the steady loop (the ``Clock(ii)`` that
        ends each iteration).  The bulk fast path only engages at
        ``ii == 1``.
    dtype:
        Element dtype the kernel casts popped values to (``None`` keeps
        the channel values' native dtype).
    ready:
        Zero-argument callable returning how many full steady iterations
        the kernel can still execute from its current shared state.
        ``None`` (or :meth:`declare`) pins it to 0: ports are declared
        but the fast path never engages.
    block:
        ``block(k, ins) -> [out_arrays]`` — the vectorized interpreter
        for ``k`` iterations (see the module docstring contract).
    dram:
        Optional sequence of :class:`DramTraffic` descriptors for memory
        kernels, so bank counters can be advanced arithmetically.
    read_totals / write_totals:
        Optional tuples aligned with ``reads`` / ``writes`` giving the
        *total number of elements* the kernel consumes/produces on each
        port over a whole run (``None`` entries mean unknown).  The SDF
        rate analyzer (:mod:`repro.analysis.rate_passes`) uses these for
        the token-conservation check (FB401); they are metadata only and
        never affect execution.
    defer:
        Elements the kernel must consume on its *first* read port before
        its first push — the reordering window the FB403 minimal-depth
        inference sums along reconvergent paths.  Mirrors the ``defer=``
        argument of ``Engine.add_kernel`` but travels with the pattern,
        so fully patterned designs need no per-call annotations.
    """

    __slots__ = ("reads", "writes", "ii", "dtype", "dram",
                 "read_totals", "write_totals", "defer",
                 "_ready", "_block")

    def __init__(self, reads: Sequence[Tuple] = (),
                 writes: Sequence[Tuple] = (), ii: int = 1,
                 dtype=None, ready: Optional[Callable[[], int]] = None,
                 block: Optional[Callable] = None,
                 dram: Sequence[DramTraffic] = (),
                 read_totals: Optional[Sequence[Optional[int]]] = None,
                 write_totals: Optional[Sequence[Optional[int]]] = None,
                 defer: int = 0):
        self.reads = tuple(reads)
        self.writes = tuple(writes)
        self.ii = ii
        self.dtype = dtype
        self.dram = tuple(dram)
        self.read_totals = (tuple(read_totals) if read_totals is not None
                            else (None,) * len(self.reads))
        self.write_totals = (tuple(write_totals) if write_totals is not None
                             else (None,) * len(self.writes))
        if len(self.read_totals) != len(self.reads):
            raise ValueError("read_totals must align with reads")
        if len(self.write_totals) != len(self.writes):
            raise ValueError("write_totals must align with writes")
        self.defer = defer
        self._ready = ready
        self._block = block

    @classmethod
    def declare(cls, reads: Sequence[Tuple] = (),
                writes: Sequence[Tuple] = (),
                ii: int = 1,
                read_totals: Optional[Sequence[Optional[int]]] = None,
                write_totals: Optional[Sequence[Optional[int]]] = None,
                defer: int = 0) -> "StaticPattern":
        """Ports-only pattern: documents the steady rates, never engages
        the fast path (``ready()`` is constantly 0)."""
        return cls(reads=reads, writes=writes, ii=ii,
                   read_totals=read_totals, write_totals=write_totals,
                   defer=defer)

    def ready(self) -> int:
        """Full steady iterations executable from the current state."""
        if self._ready is None:
            return 0
        return self._ready()

    def block(self, k: int, ins: List) -> List:
        """Advance ``k`` iterations; return one output array per write."""
        if self._block is None:       # pragma: no cover - guarded by ready()
            raise RuntimeError("declare-only pattern has no block executor")
        return self._block(k, ins)

    def describe(self) -> str:
        rd = ", ".join(f"{ch.name}x{w}" for ch, w in self.reads)
        wr = ", ".join(f"{ch.name}x{w}" for ch, w, _lat in self.writes)
        kind = "static" if self._ready is not None else "declared"
        return (f"<StaticPattern {kind} ii={self.ii} "
                f"reads=[{rd}] writes=[{wr}]>")


class PatternedGenerator:
    """A generator plus its :class:`StaticPattern`.

    Generators cannot carry attributes, so module builders wrap the
    generator object in this proxy; the engine looks for a ``pattern``
    attribute on the kernel body (``getattr(body, "pattern", None)``).
    The full generator protocol is implemented so ``yield from`` over a
    patterned generator delegates transparently (PEP 380) — e.g.
    ``syr_kernel`` delegating to ``ger_kernel``.
    """

    __slots__ = ("_gen", "pattern")

    def __init__(self, gen, pattern: StaticPattern):
        self._gen = gen
        self.pattern = pattern

    def __iter__(self):
        return self

    def __next__(self):
        return next(self._gen)

    def send(self, value):
        return self._gen.send(value)

    def throw(self, *exc_info):
        return self._gen.throw(*exc_info)

    def close(self):
        return self._gen.close()

    def __repr__(self):              # pragma: no cover - debugging aid
        return f"PatternedGenerator({self._gen!r}, {self.pattern.describe()})"
