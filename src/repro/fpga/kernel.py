"""Kernel protocol for the cycle-stepped simulator.

A *kernel* (the simulator's unit of hardware: an FBLAS module, a memory
interface module, a feeder/drainer of the systolic array...) is written as a
Python generator that yields *ops*:

``Pop(ch, count)``
    Wait until ``count`` elements are visible on ``ch``, then receive them
    (the generator's ``send`` value is the list of popped elements).  Within
    one cycle a kernel may pop from several channels — this models the W
    operands an unrolled inner loop consumes per clock.

``Push(ch, values, latency=None)``
    Wait until ``ch`` has space, then stage ``values`` to become visible
    ``latency`` cycles later (defaults to the kernel's pipeline latency).

``Clock(n=1)``
    End the current cycle (advance the kernel's clock by ``n``).  Everything
    a kernel does between two ``Clock`` yields happens "in the same clock
    cycle"; a kernel with initiation interval 1 therefore pops its W
    operands, pushes its W results, and yields ``Clock()`` once per loop
    iteration.

The engine (see :mod:`repro.fpga.engine`) resumes each kernel every cycle
until it blocks or ends its cycle.  A blocked op is retried on subsequent
cycles; the blocking cycles are counted as stalls, which is how the
simulator exposes backpressure and the deadlocks of invalid compositions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence, Tuple

from .channel import Channel


@dataclass(frozen=True)
class WritePort:
    """Static description of one kernel output port (for pre-flight).

    ``lanes`` is the number of elements one ``Push`` carries (the
    vectorization width of that port); ``latency`` the pipeline latency of
    those pushes (``None``: the kernel's default latency).  Both feed the
    analyzer's channel-capacity model: a push of ``lanes`` values with
    latency ``L`` is granted ``lanes * L`` slots of staging headroom beyond
    the FIFO depth.
    """

    channel: Channel
    lanes: int = 1
    latency: Optional[int] = None


def _normalize_writes(writes) -> Tuple[WritePort, ...]:
    """Accept Channel, (Channel, lanes) or (Channel, lanes, latency)."""
    out = []
    for w in writes:
        if isinstance(w, WritePort):
            out.append(w)
        elif isinstance(w, Channel):
            out.append(WritePort(w))
        else:
            out.append(WritePort(*w))
    return tuple(out)


@dataclass(frozen=True)
class Pop:
    """Receive ``count`` elements from ``channel`` (blocking)."""

    channel: Channel
    count: int = 1


@dataclass(frozen=True)
class Push:
    """Send ``values`` on ``channel`` (blocking while full).

    ``latency`` overrides the kernel's pipeline latency for this push;
    interface modules use latency 1 (they are simple address generators),
    compute modules use their circuit depth.
    """

    channel: Channel
    values: tuple
    latency: Optional[int] = None

    @staticmethod
    def of(channel: Channel, values, latency: Optional[int] = None) -> "Push":
        if isinstance(values, (list, tuple)):
            return Push(channel, tuple(values), latency)
        return Push(channel, (values,), latency)


@dataclass(frozen=True)
class Clock:
    """End the current simulated cycle (advance by ``cycles``)."""

    cycles: int = 1


KernelBody = Generator  # yields Pop/Push/Clock, receives pop results


@dataclass
class BlockedState:
    """Typed record of the op a kernel is currently blocked on.

    Owned by the kernel (set and cleared by whichever engine core drives
    it) and read by deadlock diagnostics, the analysis passes and the
    stall-chain profiler — replacing the ad-hoc ``blocked_on`` attribute
    the engine used to poke in from outside.

    ``since`` is the last cycle for which a stall has already been
    charged to the kernel and channel counters.  The dense stepper
    charges every cycle, so ``since`` simply tracks the current cycle;
    the event scheduler charges lazily (``wake_cycle - since - 1`` on
    wake, ``deadlock_cycle - since`` at deadlock), which is what keeps
    its stall accounting identical to the dense core without touching
    blocked kernels every cycle.
    """

    op: object
    channel: Channel
    kind: str                 # "pop" | "push"
    since: int


@dataclass
class KernelStats:
    """Per-kernel activity counters filled in by the engine."""

    active_cycles: int = 0
    stall_cycles: int = 0
    start_cycle: Optional[int] = None
    finish_cycle: Optional[int] = None

    @property
    def total_cycles(self) -> int:
        if self.start_cycle is None or self.finish_cycle is None:
            return 0
        return self.finish_cycle - self.start_cycle


class Kernel:
    """A named kernel instance bound to a generator body.

    Parameters
    ----------
    name:
        Diagnostic name (unique within an engine).
    body:
        The generator implementing the kernel.
    latency:
        Default pipeline latency, in cycles, applied to ``Push`` ops that do
        not specify one.  This is the *circuit depth* of Sec. IV of the
        paper: results of the inner-loop circuit emerge this many cycles
        after their operands enter.
    reads / writes:
        Optional *static port annotations* for the pre-flight analyzer
        (:mod:`repro.analysis`): the channels this kernel pops from, and the
        channels it pushes to (each a :class:`WritePort`, a bare channel,
        or a ``(channel, lanes[, latency])`` tuple).  A kernel with no
        annotations is simulated exactly the same but is invisible to the
        static kernel-graph passes.
    defer:
        Reordering window: the number of input elements this kernel must
        consume before it performs its first push (0 for plain streaming
        kernels; ``N * T_N`` for a row-tiled GEMV).  Drives the
        channel-depth sufficiency prover (diagnostic FB003).
    ii:
        Declared initiation interval — the cycles between consecutive
        inputs the module was *designed* for (1 for every
        pipeline-transformed FBLAS module, Sec. IV).  Purely an
        annotation: telemetry compares it against the achieved interval
        (live cycles per work cycle) to expose under-pipelined kernels.
    """

    def __init__(self, name: str, body: KernelBody, latency: int = 1,
                 reads: Sequence[Channel] = (), writes: Sequence = (),
                 defer: int = 0, ii: int = 1, pattern=None):
        if latency < 1:
            raise ValueError(f"kernel {name!r}: latency must be >= 1")
        if defer < 0:
            raise ValueError(f"kernel {name!r}: defer must be >= 0")
        if ii < 1:
            raise ValueError(f"kernel {name!r}: ii must be >= 1")
        self.name = name
        self.body = body
        self.latency = latency
        self.ii = ii
        self.reads: Tuple[Channel, ...] = tuple(reads)
        self.writes: Tuple[WritePort, ...] = _normalize_writes(writes)
        self.defer = defer
        # Optional StaticPattern (repro.fpga.pattern): the steady-state
        # op signature the bulk scheduler replays arithmetically.  Set by
        # Engine.add_kernel from the body's ``pattern`` attribute; None
        # means the kernel is always event-stepped.
        self.pattern = pattern
        self.stats = KernelStats()
        self.done = False
        # Typed blocked-state (None while runnable); see BlockedState.
        self.blocked: Optional[BlockedState] = None
        # Cycles remaining on an explicit Clock(n>1) wait.
        self.sleep_until: int = -1
        # Value delivered at the next generator resume (a completed Pop).
        self._resume_value = None
        # Position in the engine's kernel list; fixes the deterministic
        # step order both cores share.  Set by Engine.add_kernel.
        self.index: int = -1
        # Event-scheduler bookkeeping: the cycle this kernel is queued to
        # run at (None while blocked/idle), the last cycle it was stepped,
        # and whether that step made progress (for trace parity).
        self._queued_for: Optional[int] = None
        self._last_stepped: int = -1
        self._last_progress: bool = False

    def wrap_body(self, wrapper) -> None:
        """Replace the body with ``wrapper(body)`` (fault injection).

        Must be called before the kernel is first stepped.  The wrapped
        generator no longer matches the kernel's declared steady-state
        pattern — an injected freeze or crash breaks the ii=1 cadence the
        bulk scheduler would replay — so the pattern is cleared, forcing
        exact event stepping for this kernel.
        """
        self.body = wrapper(self.body)
        self.pattern = None

    @property
    def annotated(self) -> bool:
        """True when the kernel declared its ports for static analysis."""
        return bool(self.reads or self.writes)

    @property
    def blocked_on(self) -> Optional[object]:
        """The raw op this kernel is blocked on (compatibility accessor)."""
        return self.blocked.op if self.blocked is not None else None

    # -- typed port accessors (consumed by repro.analysis) -------------------
    @property
    def read_channels(self) -> Tuple[Channel, ...]:
        """Channels this kernel declared it pops from."""
        return self.reads

    @property
    def write_ports(self) -> Tuple[WritePort, ...]:
        """Typed output ports this kernel declared it pushes to."""
        return self.writes

    def describe_block(self) -> str:
        """Human-readable description of the blocking op (for deadlocks)."""
        b = self.blocked
        if b is None:
            return "not yet started"
        op = b.op
        if b.kind == "pop":
            return (
                f"pop({op.count}) from {b.channel.name!r} "
                f"(occupancy={b.channel.occupancy})"
            )
        return (
            f"push({len(op.values)}) to {b.channel.name!r} "
            f"(space={b.channel.space()}/{b.channel.depth})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else (
            f"blocked on {self.blocked.op}" if self.blocked else "runnable"
        )
        return f"Kernel({self.name!r}, {state})"
