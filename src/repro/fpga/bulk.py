"""Bulk steady-state scheduler (``Engine(mode="bulk")``).

The event core already skips provably idle cycles, but a pipeline at
full throughput has none: every kernel executes every cycle, so event
mode degenerates to the dense loop (the honest ~1x of
``BENCH_engine.json`` in the ii=1 regime).  This scheduler adds the
missing fast path: when the design is in a *cycle-periodic steady
state*, K cycles are executed as one arithmetic superstep instead of K
generator resumes per kernel.

How a window is proven, not guessed
-----------------------------------
A superstep must be byte-identical to K event cycles, so the fast path
only engages on evidence:

1. **Probe precondition** — every kernel queued for this cycle carries
   an executable :class:`~repro.fpga.pattern.StaticPattern` with
   ``ii == 1`` and at least :data:`~BulkScheduler.MIN_WINDOW` steady
   iterations of state left (``ready()``), none is blocked, and no
   *foreign* kernel waits on any pattern channel (its wake order could
   not be replayed).  Observers disable the fast path outright — an
   instrumented run wants per-cycle callbacks, and correctness of
   metrics/traces then holds trivially because every cycle is real.
2. **Fingerprint probe** — the relative channel state (FIFO occupancy
   plus staged-readiness offsets of *every* channel) and the runnable
   set are captured, one cycle is executed **normally**, and the
   fingerprint is recomputed.  If the two differ, nothing was lost (a
   real cycle ran) and probing backs off exponentially.  If they match,
   the system state is period-1: by induction every subsequent cycle
   repeats the probe cycle exactly — same pops, pushes, maturations,
   full DRAM grants — until some kernel leaves its steady phase or a
   foreign event fires.
3. **Window bound** — K is clamped to the smallest pattern ``ready()``,
   the earliest viable foreign heap event (a sleeper's wake, a
   non-window maturation) and ``max_cycles``, so nothing that could
   interrupt the periodicity lies inside the window.

The replay itself walks the window kernels in topological producer →
consumer order, moves ``K * lanes`` values per port through the
channels' block-run transfers (:meth:`Channel.push_block` /
:meth:`Channel.pop_block` — ndarray slices, not per-element tuples),
lets each pattern's vectorized ``block()`` advance the kernel's shared
loop state, and adds ``K`` to the activity/traffic/bank counters.  No
stall is charged (a steady cycle has none), ``max_occupancy`` cannot
exceed the probe cycle's already-recorded peak (the per-cycle state
repeats), and :meth:`Channel.end_window` restores exact per-element
storage — with the FIFO occupancy asserted against the fingerprint.

Anything the proof does not cover — fill and drain phases, epilogues,
unpatterned kernels, declare-only patterns, ii > 1, blocked neighbours,
``trace=True`` — executes on the inherited event scheduler unchanged,
which is what keeps mixed static/dynamic designs and all verdicts
(including :class:`~repro.fpga.errors.DeadlockError`) byte-identical
across the three cores.
"""

from __future__ import annotations

from .errors import SimulationError
from .scheduler import _KIDX, _MATURE, WakeListScheduler

__all__ = ["BulkScheduler", "CertifiedScheduler"]


class BulkScheduler(WakeListScheduler):
    """Event scheduler plus the steady-state superstep fast path."""

    #: Smallest window worth replaying arithmetically.
    MIN_WINDOW = 4
    #: Cap on the exponential probe backoff, in cycles.
    MAX_COOLDOWN = 64

    def __init__(self, engine, max_cycles: int):
        super().__init__(engine, max_cycles)
        self._cool = 0            # cycles left before the next probe
        self._cooldown = 1        # next backoff length
        # Introspection for tests/benchmarks/telemetry: number of
        # supersteps and total cycles they fast-forwarded, plus how
        # often the runtime had to speculate (probe) and back off
        # (cooldown) — a certified run keeps the last two at zero.
        # Exposed as Engine.bulk_stats() and copied into each
        # engine-run ledger record by the telemetry session.
        engine._bulk_windows = 0
        engine._bulk_cycles = 0
        engine._bulk_probes = 0
        engine._bulk_cooldowns = 0

    # -- probe --------------------------------------------------------------
    def _run_cycle(self) -> None:
        if self._cool > 0 or self._observers or not self._precheck():
            if self._cool > 0:
                self._cool -= 1
            super()._run_cycle()
            return
        self.engine._bulk_probes += 1
        fp0 = self._fingerprint()
        super()._run_cycle()
        fp1 = self._fingerprint()
        if fp1 == fp0 and self._replay(fp1):
            self._cooldown = 1
        else:
            self.engine._bulk_cooldowns += 1
            self._cool = self._cooldown
            self._cooldown = min(self._cooldown * 2, self.MAX_COOLDOWN)

    def _precheck(self) -> bool:
        cur = self._current
        if not cur:
            return False
        for k in cur:
            p = k.pattern
            if (p is None or p._ready is None or p.ii != 1
                    or k.blocked is not None
                    or p.ready() < self.MIN_WINDOW):
                return False
        inj = self.engine._injector
        for k in cur:
            p = k.pattern
            for ch, _w in p.reads:
                if ch._pop_waiters or ch._push_waiters:
                    return False
            for ch, _w, _lat in p.writes:
                if ch._pop_waiters or ch._push_waiters:
                    return False
                # A pending channel fault would be bypassed by the
                # window's block transfers; event-step until it fires.
                if inj is not None and inj.pending(ch):
                    return False
        # Replay assumes full DRAM grants; an active throttle window
        # invalidates that, so its cycles are always event-stepped.
        if inj is not None and inj.throttle_active(self.now):
            return False
        return True

    def _fingerprint(self):
        """Relative channel state + runnable set, invariant under a
        time shift iff the system is period-1 periodic."""
        t = self.now
        return (
            tuple((len(ch._fifo), tuple(r - t for r, _v in ch._staged))
                  for ch in self.channels),
            tuple((k.index, k.blocked is None, k.sleep_until > t)
                  for k in self._current),
        )

    # -- replay -------------------------------------------------------------
    def _replay(self, fp) -> bool:
        plan = self._window_plan()
        if plan is None:
            return False
        K, order, producers, consumers = plan
        expected = {ch: occ
                    for ch, (occ, _offs) in zip(self.channels, fp[0])}
        self._execute_window(K, order, producers, expected)
        return True

    def _window_plan(self):
        """Bound and order one superstep from the current state.

        Returns ``(K, order, producers, consumers)`` — the window length,
        the kernels in topological producer -> consumer order, and the
        per-window-channel ``{channel: (kernel, lanes)}`` port maps — or
        ``None`` when no window of at least :data:`MIN_WINDOW` cycles is
        provable from the pattern structure alone.
        """
        t1 = self.now
        kernels = self._current          # sorted by index, all patterned
        K = min(self.max_cycles - t1,
                min(k.pattern.ready() for k in kernels))
        # Port maps; a steady window only supports single-producer /
        # single-consumer channels with both endpoints inside it and
        # matching lanes (anything else could not have fingerprinted as
        # periodic, but bail rather than trust that argument alone).
        producers = {}
        consumers = {}
        for k in kernels:
            p = k.pattern
            for ch, w in p.reads:
                if ch in consumers:
                    return None
                consumers[ch] = (k, w)
            for ch, w, lat in p.writes:
                if ch in producers:
                    return None
                producers[ch] = (k, w)
        if set(producers) != set(consumers):
            return None
        for ch, (_k, w) in producers.items():
            if consumers[ch][1] != w:
                return None
        window_chans = producers        # == consumers keyset
        # Topological producer -> consumer order (Kahn, index-ordered).
        indeg = {k: 0 for k in kernels}
        adj = {k: [] for k in kernels}
        for ch in window_chans:
            pk = producers[ch][0]
            ck = consumers[ch][0]
            if pk is ck:
                return None
            adj[pk].append(ck)
            indeg[ck] += 1
        frontier = sorted((k for k in kernels if indeg[k] == 0), key=_KIDX)
        order = []
        while frontier:
            k = frontier.pop(0)
            order.append(k)
            grew = False
            for nk in adj[k]:
                indeg[nk] -= 1
                if indeg[nk] == 0:
                    frontier.append(nk)
                    grew = True
            if grew:
                frontier.sort(key=_KIDX)
        if len(order) != len(kernels):
            return None                  # cyclic pattern graph
        # Clamp to the earliest viable foreign event: nothing may fire
        # inside the window except the window's own maturations.
        for tev, _seq, tag, obj in self._heap:
            if tev >= t1 + K:
                continue
            if tag == _MATURE:
                if obj._mature_at == tev and obj not in window_chans:
                    K = min(K, tev - t1)
            elif obj._queued_for == tev and not obj.done:
                K = min(K, tev - t1)
        # Clamp away from injected memory faults: the fault cycle itself
        # must be an *executed* cycle (begin_cycle applies due faults),
        # exactly as the other cores see it.
        inj = self.engine._injector
        if inj is not None:
            nxt = inj.next_memory_event(t1)
            if nxt is not None and nxt < t1 + K:
                K = nxt - t1
        if K < self.MIN_WINDOW:
            return None
        return K, order, producers, consumers

    def _execute_window(self, K, order, window_chans, expected) -> None:
        """Execute one K-cycle superstep (no bail-outs).

        ``expected`` maps each window channel to the FIFO occupancy it
        must return to after the window (the periodicity invariant).
        """
        t1 = self.now
        touched_banks = set()
        for k in order:
            p = k.pattern
            ins = [ch.pop_block(K * w, p.dtype) for ch, w in p.reads]
            outs = p.block(K, ins)
            for (ch, w, lat), arr in zip(p.writes, outs):
                eff = lat if lat is not None else k.latency
                ch.push_block(arr, w, t1 + eff)
            k.stats.active_cycles += K
            k._queued_for = t1 + K
            k._last_stepped = t1 + K - 1
            k._last_progress = True
            for d in p.dram:
                nbytes = K * d.elements * d.buf.itemsize
                if d.buf.bank is not None:
                    bs = d.mem.bank_stats[d.buf.bank]
                    if d.kind == "read":
                        bs.bytes_read += nbytes
                    else:
                        bs.bytes_written += nbytes
                    # A bank is busy once per cycle no matter how many
                    # kernels hit it — mirror DramModel._busy_mark.
                    touched_banks.add((id(d.mem), d.mem, d.buf.bank))
        for _mid, mem, bank in touched_banks:
            mem.bank_stats[bank].busy_cycles += K
        last = t1 + K - 1
        for ch in window_chans:
            ch.end_window(last)
            if len(ch._fifo) != expected[ch]:
                raise SimulationError(
                    f"bulk window invariant violated on channel "
                    f"{ch.name!r}: occupancy {len(ch._fifo)} after a "
                    f"{K}-cycle superstep, expected {expected[ch]}")
            ch._mature_at = None
            if ch._staged and len(ch._fifo) < ch.depth:
                nm = ch._staged[0][0]
                self._schedule_mature(ch, nm if nm > t1 + K else t1 + K)
        self.now = self.engine.now = t1 + K
        # Every steady cycle moved data; the watchdog deadline advances
        # exactly as K event-stepped cycles would have advanced it.
        self.engine._last_op_cycle = t1 + K - 1
        self.engine._bulk_windows += 1
        self.engine._bulk_cycles += K


class CertifiedScheduler(BulkScheduler):
    """Superstep execution driven by a certificate, not speculation
    (``Engine(mode="certified")``).

    The bulk tier *discovers* periodicity at runtime: capture a
    fingerprint, execute one real probe cycle, compare, back off on
    mismatch.  When the design holds a :class:`repro.analysis.schedule.
    StaticSchedule` certificate (every kernel carries an executable
    ``StaticPattern``, the SDF balance equations are consistent, token
    totals conserve, channel depths meet the inferred minima and the
    steady DRAM demand fits every bank's budget), speculation is
    unnecessary: whether the current state ``S`` is inside a steady
    window is *decidable in O(channels)* by checking that one simulated
    event cycle maps ``S`` to itself — :meth:`_aligned` evaluates that
    fixed-point condition arithmetically, per channel, without running
    the cycle.

    When the check passes, the window executes immediately through the
    inherited :meth:`_execute_window` machinery; when it fails (fill or
    drain phases, tile epilogues), the engine event-steps exactly one
    cycle and tries again.  No fingerprint probes, no cooldown backoff:
    ``engine._bulk_probes == engine._bulk_cooldowns == 0`` for a whole
    certified run, which the acceptance tests assert.
    """

    def _run_cycle(self) -> None:
        eng = self.engine
        t = self.now
        # The superstep path must replicate the livelock watchdog the
        # event core checks before stepping anything (the bulk tier gets
        # it for free from its probe cycle; there is no probe here).
        w = eng._watch_window
        if w and t >= eng._last_op_cycle + w and not any(
                not k.done and k.sleep_until >= t for k in self.kernels):
            self._raise_hang("livelock", t, budget=w)
        if self._observers or not self._precheck():
            WakeListScheduler._run_cycle(self)
            return
        plan = self._window_plan()
        if plan is None:
            WakeListScheduler._run_cycle(self)
            return
        K, order, producers, consumers = plan
        pre = self._aligned(producers, consumers)
        if pre is None:
            WakeListScheduler._run_cycle(self)
            return
        # The event core's phase-0 maturation would have recorded the
        # in-cycle FIFO peak (occupancy + matured batch) on every window
        # channel; no real cycle runs here, so record it explicitly.
        for ch, peak in pre.items():
            if peak > ch.stats.max_occupancy:
                ch.stats.max_occupancy = peak
        # The fixed-point check proves every simulated cycle returns the
        # channel to its current occupancy — that *is* the invariant the
        # window must restore.
        expected = {ch: len(ch._fifo) for ch in producers}
        self._execute_window(K, order, producers, expected)

    def _aligned(self, producers, consumers):
        """Decide ``F(S) == S``: one event cycle maps this state to
        itself.

        For each window channel (producer pushing ``w`` per cycle at
        effective latency ``eff``, consumer popping ``w``), simulate the
        cycle arithmetically on ``(fifo occupancy, staged offsets)``:
        phase-0 maturation moves due staged values into the FIFO (capped
        at depth), the pop must be feasible, the push must have space
        under its ``eff * w`` staging headroom, and the resulting state
        must equal the starting one.  Foreign channels must be inert: a
        window never touches them, which is only event-faithful while
        they cannot mature on their own (no staged values, or a full
        FIFO blocking maturation — the scheduler does not re-arm those).

        Returns ``{channel: in-cycle FIFO peak}`` when aligned, else
        ``None``.
        """
        t = self.now
        pre = {}
        for ch, (pk, w) in producers.items():
            ck, _w = consumers[ch]
            lat = next(lt for c, _l, lt in pk.pattern.writes if c is ch)
            eff = lat if lat is not None else pk.latency
            occ = len(ch._fifo)
            offs = [r - t for r, _v in ch._staged]
            m = 0
            while m < len(offs) and offs[m] <= 0 and occ + m < ch.depth:
                m += 1
            occ1 = occ + m                   # post-maturation occupancy
            offs1 = offs[m:]
            if occ1 < w:                     # pop must succeed this cycle
                return None
            # Push feasibility: the consumer frees its batch first only
            # when it steps first (lower kernel index).
            fifo_at_push = occ1 - w if ck.index < pk.index else occ1
            if ch.depth + eff * w - fifo_at_push - len(offs1) < w:
                return None
            # Fixed point: occupancy and the staged-offset multiset must
            # come back exactly (w matured out, w pushed at eff).
            if occ1 - w != occ:
                return None
            if [o - 1 for o in offs1] + [eff - 1] * w != offs:
                return None
            pre[ch] = occ1
        for ch in self.channels:
            if ch in producers:
                continue
            if ch._staged and len(ch._fifo) < ch.depth:
                return None                  # foreign channel could mature
        return pre
