"""Pluggable engine observers: tracing and profiling as a protocol.

Tracing used to live inline in the engine's cycle loop behind ``if
self.trace`` branches.  Both engine cores (dense and event-driven) now
publish a small event protocol instead, and anything that wants to watch
a run — the classic timeline/occupancy trace, a stall-chain profiler, a
JSONL event dump, ad-hoc debugging hooks — subscribes as an observer:

``on_run_start(engine)`` / ``on_run_end(report)``
    Bracket the run.  ``on_run_end`` fires only on successful completion
    (a deadlocked or truncated run raises out of ``Engine.run``).

``on_cycle(t)``
    An executed cycle, fired after channel maturation and before kernels
    step — channel occupancies are exactly what the dense core samples.

``on_kernel_state(t, kernel, state)``
    Per executed cycle, per kernel, the same one-character state the
    dense trace recorded: ``#`` worked, ``s`` stalled, ``z`` sleeping,
    ``-`` done.  Only emitted when the observer sets
    ``wants_kernel_states`` (the event core otherwise skips the sweep).

``on_channel_op(t, kernel, channel, kind, count)``
    A successful ``pop``/``push`` of ``count`` elements.

``on_quiet(start, cycles)``
    Event core only: the scheduler proved cycles ``start ..
    start+cycles-1`` cannot change any state (every live kernel blocked
    or sleeping, no maturation due) and skipped them.  Kernel states and
    channel occupancies are constant over the window, so observers can
    synthesize the dense per-cycle record exactly — that is how
    ``TraceObserver`` keeps byte-identical timelines across modes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Set, Tuple

#: Cap on per-kernel timeline samples and per-channel occupancy samples
#: kept by :class:`TraceObserver` (timelines and occupancy sums truncate
#: at the same cycle so the two views of a long run agree).
MAX_TRACE_CYCLES = 100_000


class EngineObserver:
    """Base observer: every hook is a no-op; subclass what you need."""

    #: Set True to receive per-cycle per-kernel ``on_kernel_state`` calls.
    #: The event core only performs the full kernel sweep when some
    #: attached observer asks for it.
    wants_kernel_states = False

    def on_run_start(self, engine) -> None:
        pass

    def on_cycle(self, t: int) -> None:
        pass

    def on_kernel_state(self, t: int, kernel, state: str) -> None:
        pass

    def on_channel_op(self, t: int, kernel, channel, kind: str,
                      count: int) -> None:
        pass

    def on_quiet(self, start: int, cycles: int) -> None:
        pass

    def on_run_end(self, report) -> None:
        pass


class TraceObserver(EngineObserver):
    """The classic ``trace=True`` recording: timelines + occupancy sums.

    Produces exactly the per-kernel state strings and per-channel summed
    occupancies the dense engine used to record inline, in either engine
    mode.  Both are capped at :data:`MAX_TRACE_CYCLES` samples.
    """

    wants_kernel_states = True

    def __init__(self):
        self.occupancy_sums: Dict[str, int] = {}
        self.timelines: Dict[str, List[str]] = {}
        self._engine = None

    def on_run_start(self, engine) -> None:
        self._engine = engine

    def on_cycle(self, t: int) -> None:
        if t >= MAX_TRACE_CYCLES:
            return
        sums = self.occupancy_sums
        for name, ch in self._engine.channels.items():
            sums[name] = sums.get(name, 0) + ch.occupancy

    def on_kernel_state(self, t: int, kernel, state: str) -> None:
        if t < MAX_TRACE_CYCLES:
            self.timelines.setdefault(kernel.name, []).append(state)

    def on_quiet(self, start: int, cycles: int) -> None:
        n = min(start + cycles, MAX_TRACE_CYCLES) - start
        if n <= 0:
            return
        sums = self.occupancy_sums
        for name, ch in self._engine.channels.items():
            sums[name] = sums.get(name, 0) + n * ch.occupancy
        for k in self._engine.kernels.values():
            state = "-" if k.done else ("z" if k.sleep_until > start else "s")
            self.timelines.setdefault(k.name, []).extend(state * n)


class StallChainProfiler(EngineObserver):
    """Aggregates who stalls on what and derives backpressure chains.

    For every stalled cycle it records which channel (and direction) the
    kernel was blocked on, using the typed
    :class:`~repro.fpga.kernel.BlockedState`.  Channel endpoints are
    learned from port annotations and from observed ops, so
    :meth:`chain` can walk a stall to its root cause: a kernel blocked
    popping channel ``c`` points at ``c``'s producer; blocked pushing, at
    its consumer.  The walk stops at the first kernel that is not itself
    dominated by stalls — the actual bottleneck.
    """

    wants_kernel_states = True

    def __init__(self):
        #: kernel name -> {(channel name, "pop"|"push"): stalled cycles}
        self.stalls: Dict[str, Dict[Tuple[str, str], int]] = {}
        self.producers: Dict[str, Set[str]] = {}
        self.consumers: Dict[str, Set[str]] = {}
        self._engine = None

    def on_run_start(self, engine) -> None:
        self._engine = engine
        for k in engine.kernels.values():
            for ch in k.read_channels:
                self.consumers.setdefault(ch.name, set()).add(k.name)
            for port in k.write_ports:
                self.producers.setdefault(port.channel.name, set()).add(k.name)

    def _charge(self, kernel, cycles: int) -> None:
        b = kernel.blocked
        key = (b.channel.name, b.kind)
        d = self.stalls.setdefault(kernel.name, {})
        d[key] = d.get(key, 0) + cycles

    def on_kernel_state(self, t: int, kernel, state: str) -> None:
        if state == "s" and kernel.blocked is not None:
            self._charge(kernel, 1)

    def on_quiet(self, start: int, cycles: int) -> None:
        for k in self._engine.kernels.values():
            if not k.done and k.blocked is not None and k.sleep_until <= start:
                self._charge(k, cycles)

    def on_channel_op(self, t: int, kernel, channel, kind: str,
                      count: int) -> None:
        side = self.producers if kind == "push" else self.consumers
        side.setdefault(channel.name, set()).add(kernel.name)

    # -- analysis ----------------------------------------------------------
    def dominant_stall(self, kernel: str) -> Optional[Tuple[str, str, int]]:
        """(channel, kind, cycles) the kernel stalled on most, or None."""
        d = self.stalls.get(kernel)
        if not d:
            return None
        (ch, kind), cycles = max(d.items(), key=lambda kv: kv[1])
        return ch, kind, cycles

    def chain(self, kernel: str) -> List[str]:
        """Follow dominant stalls from ``kernel`` to the root bottleneck."""
        path = [kernel]
        seen = {kernel}
        while True:
            dom = self.dominant_stall(path[-1])
            if dom is None:
                return path
            ch, kind, _cycles = dom
            peers = (self.producers if kind == "pop"
                     else self.consumers).get(ch, set()) - seen
            if not peers:
                return path
            nxt = max(peers,
                      key=lambda n: sum(self.stalls.get(n, {}).values()))
            path.append(nxt)
            seen.add(nxt)

    def report(self) -> str:
        """Human-readable stall summary with the derived chains."""
        lines = ["stall chains:"]
        for name in sorted(self.stalls,
                           key=lambda n: -sum(self.stalls[n].values())):
            total = sum(self.stalls[name].values())
            dom = self.dominant_stall(name)
            lines.append(
                f"  {name}: {total} stalled cycles, mostly "
                f"{dom[1]} on {dom[0]!r} ({dom[2]})")
            chain = self.chain(name)
            if len(chain) > 1:
                lines.append("    chain: " + " <- ".join(chain))
        if len(lines) == 1:
            lines.append("  (no stalls recorded)")
        return "\n".join(lines)


#: Schema tag written in every :class:`JsonlEventDump` header record.
JSONL_EVENTS_SCHEMA = "repro.engine-events/1"


class JsonlEventDump(EngineObserver):
    """Streams run events as JSON lines for offline analysis.

    ``target`` is a path (opened on the first run, closed by
    :meth:`close`) or a file-like object (never closed — the caller owns
    it; it is still flushed).  Kernel states are de-duplicated: a line is
    written only when a kernel's state changes, so the dump stays compact
    even for long runs.

    The first record of every run is a header carrying ``schema`` (see
    :data:`JSONL_EVENTS_SCHEMA`) so consumers can detect format drift.
    Flush/close are deterministic: every run end flushes, and the dump is
    a context manager, so even a run that raises mid-simulation leaves a
    complete file behind::

        with JsonlEventDump("events.jsonl") as dump:
            eng.add_observer(dump)
            eng.run()
    """

    wants_kernel_states = True

    def __init__(self, target):
        self._target = target
        self._f = None
        self._own = False
        self._last: Dict[str, str] = {}

    def _write(self, obj) -> None:
        self._f.write(json.dumps(obj) + "\n")

    def on_run_start(self, engine) -> None:
        if self._f is None:
            if hasattr(self._target, "write"):
                self._f = self._target
            else:
                self._f = open(self._target, "w")
                self._own = True
        self._last = {}
        self._write({"ev": "start", "schema": JSONL_EVENTS_SCHEMA,
                     "kernels": list(engine.kernels),
                     "channels": list(engine.channels)})

    def on_kernel_state(self, t: int, kernel, state: str) -> None:
        if self._last.get(kernel.name) != state:
            self._last[kernel.name] = state
            self._write({"ev": "kernel", "t": t,
                         "kernel": kernel.name, "state": state})

    def on_channel_op(self, t: int, kernel, channel, kind: str,
                      count: int) -> None:
        self._write({"ev": "op", "t": t, "kernel": kernel.name,
                     "channel": channel.name, "kind": kind, "count": count})

    def on_quiet(self, start: int, cycles: int) -> None:
        self._write({"ev": "quiet", "t": start, "cycles": cycles})

    def on_run_end(self, report) -> None:
        self._write({"ev": "end", "cycles": report.cycles})
        self._f.flush()

    def close(self) -> None:
        """Flush and (for path targets) close the file.  Idempotent."""
        if self._f is None:
            return
        self._f.flush()
        if self._own:
            self._f.close()
        self._f = None
        self._own = False

    def __enter__(self) -> "JsonlEventDump":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
