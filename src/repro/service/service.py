"""The multi-tenant simulation service.

One :class:`SimulationService` multiplexes many concurrent tenants onto
a supervised pool of engine workers:

* **Admission control** runs at submit time: :class:`~.jobs.EngineJob`
  designs go through the FBxxx pre-flight
  (:func:`repro.analysis.analyze_engine`) and provably-broken
  compositions are rejected *synchronously* with the full diagnostic
  list attached (ledger outcome ``"rejected"``) — they never reach a
  worker.  Malformed :class:`~.jobs.RoutineJob` requests are rejected
  with a synthesized FB500 diagnostic.
* **Bounded queue**: when the admission queue is full the service sheds
  load with a typed :class:`~.errors.ServiceOverload` (ledger outcome
  ``"overload"``) instead of buffering unboundedly.
* **Deadlines**: a per-request (or service-default) deadline covers
  queue wait plus execution; requests that expire while queued resolve
  with :class:`~repro.fpga.errors.DeadlineExceeded` without consuming a
  worker, and the same budget bounds the recovery ladder's retries
  (ledger outcome ``"deadline"`` — distinct from ``"deadlock"``, which
  is a deterministic design property).  Hung simulations are bounded by
  the engine's own livelock watchdog, whose
  :class:`~repro.fpga.errors.HangError` feeds the demotion ladder.
* **Supervision**: every run executes under
  :func:`repro.faults.run_with_recovery` (retry/backoff on transient
  faults -> checkpoint-fresh rebuild -> tier demotion bulk->event->
  dense); a worker thread killed by a poison job is detected by the
  supervisor and respawned, and queued requests survive (the queue is
  shared, not per-worker).
* **Graceful degradation is per-plan**: when recovery demotes a run,
  the *plan label* is demoted in the tier map — subsequent requests for
  that plan start at the demoted tier while every other plan stays on
  the fast tier.  :meth:`SimulationService.reset_demotions` clears it.
* **Shared compiled-plan cache**: all workers share one
  :class:`~repro.plan.PlanCache` pair (plans keyed on the structural
  MDAG fingerprint, certificates on ``plan_key``), so a plan compiled
  for one tenant is a cache hit for every other.
* **Batched fusion**: compatible queued jobs (same
  :meth:`~.jobs.RoutineJob.batch_key`) fuse into one bulk-tier batched
  engine run with bit-identical per-job results (Table V).

Every request is one :class:`~repro.telemetry.ledger.RunRecord` of kind
``"service.request"`` carrying the ``run_id`` and ``tenant``; engine
runs and host calls the workers spawn are parented under that id via
:func:`~repro.telemetry.ledger.correlate`, so spans, forensics and the
JSONL ledger all join.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..analysis import analyze_engine
from ..faults.recovery import RetryPolicy, run_with_recovery
from ..fpga.device import STRATIX10, FpgaDevice
from ..fpga.engine import Engine
from ..fpga.errors import DeadlineExceeded
from ..host.api import Fblas
from ..host.context import FblasContext
from ..plan import PlanCache
from ..telemetry.ledger import (RunLedger, RunRecord, classify_outcome,
                                correlate, mint_run_id)
from ..telemetry.runtime import active as _telemetry_active
from .batch import run_batch
from .errors import (AdmissionRejected, ServiceClosed, ServiceOverload,
                     invalid_request)
from .jobs import AppJob, EngineJob, PlanJob, RoutineJob

__all__ = ["SimulationService", "Ticket"]

Job = Union[RoutineJob, EngineJob, PlanJob, AppJob]

_JOB_SEQ = itertools.count()


class _LockedPlanCache(PlanCache):
    """A :class:`~repro.plan.PlanCache` safe under concurrent workers."""

    def __init__(self, name: str = "plan") -> None:
        super().__init__(name)
        self._cache_lock = threading.Lock()

    def get(self, key, default=None):
        with self._cache_lock:
            return super().get(key, default)

    def __setitem__(self, key, value) -> None:
        with self._cache_lock:
            super().__setitem__(key, value)

    def stats(self) -> Dict[str, int]:
        with self._cache_lock:
            return super().stats()


class Ticket:
    """Handle for one admitted request; resolves exactly once."""

    def __init__(self, run_id: str, tenant: str, label: str):
        self.run_id = run_id
        self.tenant = tenant
        self.label = label
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def _resolve(self, value: Any) -> bool:
        if self._event.is_set():
            return False
        self._value = value
        self._event.set()
        return True

    def _reject(self, exc: BaseException) -> bool:
        if self._event.is_set():
            return False
        self._error = exc
        self._event.set()
        return True

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the outcome; raises the request's typed error."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.run_id} not resolved within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: Optional[float] = None,
                  ) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.run_id} not resolved within {timeout}s")
        return self._error


@dataclass
class _Item:
    """One queued admitted request."""

    ticket: Ticket
    job: Job
    rec: RunRecord
    t_submit: float
    deadline_abs: Optional[float] = None

    def remaining(self, now: float) -> Optional[float]:
        if self.deadline_abs is None:
            return None
        return self.deadline_abs - now


@dataclass
class _Stats:
    submitted: int = 0
    completed: int = 0
    ok: int = 0
    rejected: int = 0
    overload: int = 0
    deadline: int = 0
    failed: int = 0
    batched_runs: int = 0
    fused_jobs: int = 0
    worker_restarts: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)

    def bump(self, **deltas: int) -> None:
        with self.lock:
            for k, v in deltas.items():
                setattr(self, k, getattr(self, k) + v)

    def snapshot(self) -> Dict[str, int]:
        with self.lock:
            return {k: getattr(self, k) for k in
                    ("submitted", "completed", "ok", "rejected", "overload",
                     "deadline", "failed", "batched_runs", "fused_jobs",
                     "worker_restarts")}


class SimulationService:
    """Session-multiplexing front end over a supervised worker pool."""

    def __init__(self, workers: int = 4, max_queue: int = 64,
                 default_deadline_s: Optional[float] = None,
                 engine_mode: str = "bulk",
                 retry_policy: Optional[RetryPolicy] = None,
                 admission: bool = True, max_batch: int = 16,
                 width: Optional[int] = None,
                 device: FpgaDevice = STRATIX10,
                 ledger: Optional[RunLedger] = None,
                 ledger_path: Optional[str] = None,
                 supervise_interval_s: float = 0.05):
        if workers < 1:
            raise ValueError("need at least one worker")
        if max_queue < 1:
            raise ValueError("queue bound must be positive")
        tel = _telemetry_active()
        #: The run ledger every request's record lands in.  Defaults to
        #: the ambient telemetry session's ledger (so service records
        #: and the engine-run records workers spawn share one ledger),
        #: else a service-owned ring with an optional JSONL sink.
        self.ledger: RunLedger = ledger if ledger is not None else (
            tel.ledger if tel is not None
            else RunLedger(path=ledger_path))
        self.engine_mode = engine_mode
        self.retry_policy = retry_policy or RetryPolicy()
        self.admission = admission
        self.max_batch = max(1, max_batch)
        self.default_deadline_s = default_deadline_s
        self.width = width
        self.device = device
        #: Service-shared compiled-plan and certificate caches; every
        #: worker's :class:`~repro.host.api.Fblas` instance mounts both.
        self.plan_cache: PlanCache = _LockedPlanCache(name="service.plan")
        self.schedule_cache: PlanCache = _LockedPlanCache(
            name="service.schedule")
        #: Per-plan degradation map: ``plan_label -> demoted tier``.
        self._tier: Dict[str, str] = {}
        self._tier_lock = threading.Lock()
        self._queue: "queue.Queue[_Item]" = queue.Queue(maxsize=max_queue)
        self._stats = _Stats()
        self._closed = threading.Event()
        self._workers: List[threading.Thread] = []
        self._workers_lock = threading.Lock()
        self._num_workers = workers
        self._supervise_interval_s = supervise_interval_s
        for i in range(workers):
            self._workers.append(self._spawn(i))
        self._supervisor = threading.Thread(
            target=self._supervise, name="svc-supervisor", daemon=True)
        self._supervisor.start()

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work; optionally drain the queue first."""
        if drain and not self._closed.is_set():
            t_end = time.monotonic() + timeout
            while not self._queue.empty() and time.monotonic() < t_end:
                time.sleep(0.01)
        self._closed.set()
        for w in list(self._workers):
            w.join(timeout=timeout)

    # -- submission ----------------------------------------------------------
    def submit(self, job: Job, tenant: str = "anon",
               deadline_s: Optional[float] = None) -> Ticket:
        """Admit one request; returns a :class:`Ticket`.

        Raises :class:`~.errors.AdmissionRejected` (provably-broken or
        malformed request — never queued), :class:`~.errors.
        ServiceOverload` (queue full) or :class:`~.errors.ServiceClosed`.
        Both rejection paths still append a ledger record, so shed and
        rejected load shows up in per-tenant reports.
        """
        if self._closed.is_set():
            raise ServiceClosed("service is closed to new submissions")
        rec = RunRecord(run_id=mint_run_id(), kind="service.request",
                        label=job.label, tenant=tenant,
                        engine_mode=self.engine_mode)
        t0 = time.monotonic()
        self._stats.bump(submitted=1)
        try:
            self._admit(job)
        except AdmissionRejected as exc:
            rec.outcome = classify_outcome(exc)
            rec.error = type(exc).__name__
            rec.wall_seconds = time.monotonic() - t0
            rec.extra["diagnostics"] = [d.code for d in exc.diagnostics]
            self.ledger.append(rec)
            self._stats.bump(rejected=1, completed=1)
            raise
        deadline = (deadline_s if deadline_s is not None
                    else self.default_deadline_s)
        ticket = Ticket(rec.run_id, tenant, job.label)
        item = _Item(ticket=ticket, job=job, rec=rec, t_submit=t0,
                     deadline_abs=(t0 + deadline) if deadline else None)
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            rec.outcome = "overload"
            rec.error = "ServiceOverload"
            rec.wall_seconds = time.monotonic() - t0
            self.ledger.append(rec)
            self._stats.bump(overload=1, completed=1)
            raise ServiceOverload(
                f"admission queue full ({self._queue.maxsize} pending)",
                queue_depth=self._queue.maxsize) from None
        return ticket

    def call(self, job: Job, tenant: str = "anon",
             deadline_s: Optional[float] = None,
             timeout: Optional[float] = None) -> Any:
        """Submit and block for the result (single-caller convenience)."""
        return self.submit(job, tenant, deadline_s).result(timeout)

    def _admit(self, job: Job) -> None:
        """Pre-flight gate; raises :class:`AdmissionRejected`."""
        if not self.admission:
            return
        if isinstance(job, RoutineJob):
            msg = job.validate()
            if msg is not None:
                raise invalid_request(msg, obj=job.label)
            return
        if isinstance(job, EngineJob):
            # Build the design once on a throwaway context purely for
            # the static FBxxx analysis — no cycle is ever simulated.
            ctx = FblasContext(device=self.device)
            eng = Engine(memory=ctx.mem)
            job.build(eng, ctx)
            result = analyze_engine(eng)
            if result.errors:
                raise AdmissionRejected(result)
            return
        if isinstance(job, PlanJob):
            from ..analysis import analyze_mdag
            ctx = FblasContext(device=self.device)
            mdag, _ = job.build(ctx)
            result = analyze_mdag(mdag, windows=job.windows)
            if result.errors:
                raise AdmissionRejected(result)

    # -- degradation ---------------------------------------------------------
    def tier_for(self, plan_label: str) -> str:
        with self._tier_lock:
            return self._tier.get(plan_label, self.engine_mode)

    def _record_demotion(self, plan_label: str, tier: str) -> None:
        with self._tier_lock:
            self._tier[plan_label] = tier

    def demotions(self) -> Dict[str, str]:
        """Current per-plan tier overrides (plan label -> tier)."""
        with self._tier_lock:
            return dict(self._tier)

    def reset_demotions(self) -> None:
        """Forgive every per-plan demotion (e.g. after a fault storm)."""
        with self._tier_lock:
            self._tier.clear()

    # -- introspection -------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = self._stats.snapshot()
        out["queue_depth"] = self._queue.qsize()
        out["workers"] = sum(w.is_alive() for w in self._workers)
        out["plan_cache"] = self.plan_cache.stats()
        out["schedule_cache"] = self.schedule_cache.stats()
        out["demoted_plans"] = self.demotions()
        return out

    # -- worker pool ---------------------------------------------------------
    def _spawn(self, wid: int) -> threading.Thread:
        t = threading.Thread(target=self._worker_loop, args=(wid,),
                             name=f"svc-worker-{wid}", daemon=True)
        t.start()
        return t

    def _supervise(self) -> None:
        """Restart crashed/hung-out worker threads; queued work survives."""
        while not self._closed.is_set():
            time.sleep(self._supervise_interval_s)
            with self._workers_lock:
                for i, w in enumerate(self._workers):
                    if not w.is_alive() and not self._closed.is_set():
                        self._workers[i] = self._spawn(i)
                        self._stats.bump(worker_restarts=1)
                        tel = _telemetry_active()
                        if tel is not None:
                            tel.instant("service.worker_restart",
                                        cat="service", worker=i)

    def _worker_fblas(self) -> Fblas:
        kwargs: Dict[str, Any] = {}
        if self.width is not None:
            kwargs["width"] = self.width
        return Fblas(device=self.device, engine_mode=self.engine_mode,
                     plan_cache=self.plan_cache,
                     schedule_cache=self.schedule_cache, **kwargs)

    def _worker_loop(self, wid: int) -> None:
        fb = self._worker_fblas()
        while True:
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            batch = [item]
            key = (item.job.batch_key()
                   if isinstance(item.job, RoutineJob) else None)
            leftovers: List[_Item] = []
            if key is not None and self.max_batch > 1:
                # Fuse only on backlog: drain whatever is immediately
                # available, never wait for companions to arrive.
                while len(batch) + len(leftovers) < self.max_batch:
                    try:
                        nxt = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if (isinstance(nxt.job, RoutineJob)
                            and nxt.job.batch_key() == key):
                        batch.append(nxt)
                    else:
                        leftovers.append(nxt)
            pending = list(leftovers)
            try:
                if len(batch) > 1:
                    self._run_fused(fb, batch)
                else:
                    self._run_one(fb, item)
                while pending:
                    self._run_one(fb, pending.pop(0))
            finally:
                for _ in range(len(batch) + len(leftovers)):
                    self._queue.task_done()
                # A poison job killed this worker mid-drain: hand the
                # not-yet-run leftovers back to the pool so no admitted
                # request is ever lost.
                for nxt in pending:
                    try:
                        self._queue.put_nowait(nxt)
                    except queue.Full:
                        self._finish(nxt, error=ServiceOverload(
                            "request displaced during worker recovery",
                            queue_depth=self._queue.maxsize))

    # -- execution -----------------------------------------------------------
    def _expire_in_queue(self, item: _Item, now: float) -> bool:
        """Resolve a request whose deadline expired while queued."""
        remaining = item.remaining(now)
        if remaining is None or remaining > 0:
            return False
        exc = DeadlineExceeded(
            f"deadline expired after {now - item.t_submit:.3f}s in the "
            f"admission queue", deadline_s=item.deadline_abs - item.t_submit,
            elapsed_s=now - item.t_submit)
        self._finish(item, error=exc, stage="queue")
        return True

    def _finish(self, item: _Item, result: Any = None,
                error: Optional[BaseException] = None,
                outcome=None, stage: str = "run") -> None:
        """Resolve the ticket and freeze the ledger record, exactly once."""
        rec = item.rec
        rec.wall_seconds = time.monotonic() - item.t_submit
        rec.extra.setdefault("stage", stage)
        if outcome is not None:
            rec.engine_mode = outcome.mode
            rec.retries = outcome.retries
            rec.demotions = outcome.demotions
            if outcome.actions:
                rec.recovery = outcome.to_dict()
        if error is None:
            rec.outcome = "ok"
            resolved = item.ticket._resolve(result)
            self._stats.bump(ok=1, completed=1)
        else:
            rec.outcome = classify_outcome(error)
            rec.error = type(error).__name__
            resolved = item.ticket._reject(error)
            self._stats.bump(completed=1, **{
                "deadline" if rec.outcome == "deadline" else "failed": 1})
        if resolved:
            self.ledger.append(rec)

    def _run_one(self, fb: Fblas, item: _Item) -> None:
        now = time.monotonic()
        if self._expire_in_queue(item, now):
            return
        job = item.job
        mode0 = self.tier_for(job.plan_label)
        pc0 = self.plan_cache.stats()
        try:
            with correlate(item.rec.run_id):
                out = run_with_recovery(
                    lambda mode: self._attempt(fb, job, mode),
                    policy=self.retry_policy, mode=mode0,
                    deadline_s=item.remaining(now))
        except BaseException as exc:
            self._finish(item, error=exc)
            if not isinstance(exc, Exception):
                raise           # poison job: kill this worker; the
                                # supervisor respawns it and the queue
                                # keeps every other request.
            return
        if out.mode != mode0:
            self._record_demotion(job.plan_label, out.mode)
        pc1 = self.plan_cache.stats()
        item.rec.plan_cache = {"hits": pc1["hits"] - pc0["hits"],
                               "misses": pc1["misses"] - pc0["misses"]}
        self._finish(item, result=out.result, outcome=out)

    def _run_fused(self, fb: Fblas, batch: List[_Item]) -> None:
        """One batched engine run resolving every fused ticket."""
        now = time.monotonic()
        live = [it for it in batch if not self._expire_in_queue(it, now)]
        if not live:
            return
        if len(live) == 1:
            self._run_one(fb, live[0])
            return
        jobs = [it.job for it in live]
        plan_label = f"batch.{jobs[0].plan_label}"
        mode0 = self.tier_for(plan_label)
        deadlines = [r for it in live
                     if (r := it.remaining(now)) is not None]
        lead = live[0]
        try:
            with correlate(lead.rec.run_id):
                out = run_with_recovery(
                    lambda mode: run_batch(
                        fb.context, jobs, mode,
                        width=fb.width, channel_depth=fb.channel_depth,
                        schedule_cache=self.schedule_cache),
                    policy=self.retry_policy, mode=mode0,
                    deadline_s=min(deadlines) if deadlines else None)
        except BaseException as exc:
            for it in live:
                self._finish(it, error=exc)
            if not isinstance(exc, Exception):
                raise
            return
        if out.mode != mode0:
            self._record_demotion(plan_label, out.mode)
        self._stats.bump(batched_runs=1, fused_jobs=len(live))
        for it, res in zip(live, out.result):
            it.rec.extra["batched"] = len(live)
            it.rec.extra["batch_lead"] = lead.rec.run_id
            self._finish(it, result=res, outcome=out)

    def _attempt(self, fb: Fblas, job: Job, mode: str) -> Any:
        """One execution attempt; rebuilt from scratch, so retry-safe."""
        if isinstance(job, RoutineJob):
            return self._attempt_routine(fb, job, mode)
        if isinstance(job, EngineJob):
            ctx = FblasContext(device=self.device)
            eng = Engine(memory=ctx.mem, mode=mode,
                         schedule_cache=self.schedule_cache)
            finish = job.build(eng, ctx)
            eng.run()
            return finish() if callable(finish) else None
        if isinstance(job, PlanJob):
            from ..streaming import execute_plan
            ctx = FblasContext(device=self.device)
            mdag, finish = job.build(ctx)
            execute_plan(mdag, ctx.mem, windows=job.windows,
                         buffer_budget=job.buffer_budget, mode=mode,
                         plan_cache=self.plan_cache,
                         schedule_cache=self.schedule_cache)
            return finish() if callable(finish) else None
        if isinstance(job, AppJob):
            return job.run(mode)
        raise TypeError(f"unknown job kind {type(job).__name__}")

    def _attempt_routine(self, fb: Fblas, job: RoutineJob, mode: str) -> Any:
        saved = fb.engine_mode
        fb.engine_mode = mode
        uid = next(_JOB_SEQ)
        bound: List[str] = []
        mem = fb.context.mem
        try:
            dev_args = []
            for i, a in enumerate(job.args):
                if isinstance(a, np.ndarray):
                    buf = fb.copy_to_device(a, name=f"svc{uid}.a{i}")
                    bound.append(buf.name)
                    dev_args.append(buf)
                else:
                    dev_args.append(a)
            return getattr(fb, job.routine)(*dev_args, **job.kwargs)
        finally:
            fb.engine_mode = saved
            for name in bound:
                if name in mem.buffers:
                    mem.release(name)
