"""Job kinds the simulation service accepts.

Three shapes of work, mirroring how the repository's layers are used:

* :class:`RoutineJob` — one FBLAS routine call by name, with host-side
  numpy arguments.  By-value semantics: arrays are copied to the
  worker's device memory for the run and the routine's return value is
  the result; the caller's arrays are never mutated.  Compatible small
  jobs (same :meth:`~RoutineJob.batch_key`) fuse into one batched
  engine run — the Table V batched-operation regime.
* :class:`EngineJob` — an arbitrary streaming composition built by a
  caller-supplied function onto a fresh engine/context pair.  This is
  the kind admission control can *prove* things about: the FBxxx
  pre-flight runs on the built design before the job is queued.
* :class:`AppJob` — an opaque callable given the engine mode (the
  fault-campaign ``AppSpec.run`` shape); admitted as-is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

__all__ = ["AppJob", "EngineJob", "PlanJob", "RoutineJob",
           "BATCHABLE_ROUTINES"]

#: Routines the batch fuser knows how to run back-to-back over one
#: pipeline (see :mod:`repro.service.batch`).
BATCHABLE_ROUTINES = ("dot", "axpy")


@dataclass
class RoutineJob:
    """Call ``Fblas.<routine>(*args, **kwargs)`` on a worker.

    ``args``/``kwargs`` hold host values: numpy arrays are copied into
    the worker's device DRAM (and released after the run); scalars pass
    through.  The job's result is the routine's return value.
    """

    routine: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"routine.{self.routine}"

    @property
    def plan_label(self) -> str:
        """Degradation key: one sticky tier per routine/shape/dtype."""
        shapes = "x".join(
            str(a.size) for a in self.args if isinstance(a, np.ndarray))
        dts = {a.dtype.name for a in self.args
               if isinstance(a, np.ndarray)}
        return f"{self.routine}/{shapes or 'scalar'}/{'+'.join(sorted(dts))}"

    def arrays(self) -> Tuple[np.ndarray, ...]:
        return tuple(a for a in self.args if isinstance(a, np.ndarray))

    def batch_key(self) -> Optional[Tuple]:
        """Fusion compatibility key, or None when the job must run alone.

        Two jobs with equal keys stream back to back through one
        pipeline with bit-identical results (the batched kernels
        reproduce the per-segment summation order exactly).
        """
        if self.routine not in BATCHABLE_ROUTINES or self.kwargs:
            return None
        arrs = self.arrays()
        if self.routine == "dot":
            if len(self.args) != 2 or len(arrs) != 2:
                return None
        elif self.routine == "axpy":
            # (alpha, x, y) with a scalar alpha.
            if len(self.args) != 3 or len(arrs) != 2 or \
                    isinstance(self.args[0], np.ndarray):
                return None
        x, y = arrs
        if x.ndim != 1 or y.ndim != 1 or x.size != y.size or \
                x.dtype != y.dtype or x.size == 0:
            return None
        return (self.routine, x.size, x.dtype.name)

    def validate(self) -> Optional[str]:
        """Request-shape check; returns a rejection message or None."""
        from ..blas.routines import REGISTRY
        if self.routine not in REGISTRY:
            return f"unknown routine {self.routine!r}"
        for a in self.arrays():
            if a.dtype not in (np.float32, np.float64):
                return (f"routine {self.routine!r}: FBLAS buffers are "
                        f"float32/float64, got {a.dtype}")
            if a.size == 0:
                return f"routine {self.routine!r}: empty operand"
        return None


@dataclass
class EngineJob:
    """Build-and-run an arbitrary streaming composition.

    ``build(engine, context)`` wires kernels and channels onto the
    given fresh :class:`~repro.fpga.engine.Engine` (bound to the fresh
    :class:`~repro.host.context.FblasContext`'s memory) and returns a
    zero-argument finisher producing the job's result after the run —
    or None for side-effect-only designs.  The builder is invoked once
    at admission (on a throwaway pair, for the FBxxx pre-flight) and
    once per execution attempt, so it must be re-entrant.
    """

    build: Callable[[Any, Any], Optional[Callable[[], Any]]]
    name: str = "engine"

    @property
    def label(self) -> str:
        return f"engine.{self.name}"

    @property
    def plan_label(self) -> str:
        return self.label

    def batch_key(self) -> Optional[Tuple]:
        return None


@dataclass
class PlanJob:
    """Build-and-execute a bound MDAG through the streaming executor.

    ``build(context)`` constructs a :class:`~repro.streaming.BoundMDAG`
    on the given fresh context's memory and returns ``(mdag, finish)``
    where ``finish()`` produces the job's result after execution (or
    None).  The worker routes the run through
    :func:`repro.streaming.execute_plan` with the **service-shared
    compiled-plan cache**: the structural MDAG fingerprint of a repeat
    plan — even from a different tenant on a different worker — is a
    cache hit that skips validation, scheduling and pattern derivation.
    Admission runs the FBxxx MDAG passes on the built graph.
    """

    build: Callable[[Any], Tuple[Any, Optional[Callable[[], Any]]]]
    name: str = "plan"
    windows: Optional[Dict] = None
    buffer_budget: int = 0

    @property
    def label(self) -> str:
        return f"plan.{self.name}"

    @property
    def plan_label(self) -> str:
        return self.label

    def batch_key(self) -> Optional[Tuple]:
        return None


@dataclass
class AppJob:
    """Run an opaque application callable: ``run(engine_mode) -> result``.

    The campaign-style self-verifying shape — ``run`` may return a
    ``(value, reference)`` pair and assert equivalence itself.  No
    static design is available at submit time, so admission only gates
    on service health (queue bound, shutdown), never on FBxxx.
    """

    run: Callable[[str], Any]
    name: str = "app"

    @property
    def label(self) -> str:
        return f"app.{self.name}"

    @property
    def plan_label(self) -> str:
        return self.label

    def batch_key(self) -> Optional[Tuple]:
        return None
