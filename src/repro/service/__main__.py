"""Concurrent service soak driver: ``python -m repro.service``.

Spawns N tenant threads hammering one :class:`SimulationService` with a
deterministic job mix (batchable dots/axpys from a shared payload pool,
plus malformed requests that must be rejected), optionally under a
seeded ambient fault plan.  Verifies the service's hard guarantees:

* **zero lost requests** — every admitted ticket resolves exactly once;
* **all outcomes classified** — every ledger record carries a known
  outcome label;
* **correct bytes** — completed results are bit-identical to a stock
  single-caller :class:`~repro.host.api.Fblas` run of the same payload.

Exits non-zero when any guarantee is violated, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..faults import FaultPlan, inject
from ..host.api import Fblas
from ..telemetry.ledger import LedgerQuery
from .errors import AdmissionRejected, ServiceOverload
from .jobs import RoutineJob
from .service import SimulationService, Ticket

#: Outcome labels the gate accepts as "classified".
KNOWN_OUTCOMES = ("ok", "rejected", "overload", "deadline", "deadlock",
                  "livelock", "transient_fault", "fault")


def build_payload_pool(seed: int, n: int, pool: int,
                       ) -> List[Tuple[str, tuple]]:
    """Distinct job payloads tenants draw from (so references are few)."""
    rng = np.random.default_rng(seed)
    out: List[Tuple[str, tuple]] = []
    for i in range(pool):
        x = rng.standard_normal(n).astype(np.float32)
        y = rng.standard_normal(n).astype(np.float32)
        if i % 2 == 0:
            out.append(("dot", (x, y)))
        else:
            out.append(("axpy", (float(rng.standard_normal()), x, y)))
    return out


def reference_results(pool: List[Tuple[str, tuple]], width: Optional[int],
                      ) -> List[np.ndarray]:
    """Stock single-caller results, one per payload (the oracle)."""
    refs = []
    for routine, args in pool:
        fb = Fblas(**({"width": width} if width else {}))
        dev = [fb.copy_to_device(a) if isinstance(a, np.ndarray) else a
               for a in args]
        refs.append(getattr(fb, routine)(*dev))
    return refs


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="concurrent multi-tenant service soak")
    ap.add_argument("--tenants", type=int, default=8)
    ap.add_argument("--requests", type=int, default=12,
                    help="requests per tenant")
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--queue", type=int, default=256,
                    help="admission queue bound")
    ap.add_argument("--n", type=int, default=256, help="vector length")
    ap.add_argument("--width", type=int, default=16)
    ap.add_argument("--pool", type=int, default=6,
                    help="distinct payloads shared by all tenants")
    ap.add_argument("--deadline", type=float, default=None,
                    help="per-request deadline in seconds")
    ap.add_argument("--engine-mode", default="bulk",
                    choices=("event", "bulk", "dense", "certified"))
    ap.add_argument("--faults-seed", type=int, default=None,
                    help="arm a generated ambient fault plan")
    ap.add_argument("--faults", type=int, default=6,
                    help="faults in the generated plan")
    ap.add_argument("--invalid-every", type=int, default=7,
                    help="1 malformed request per this many (0 = none)")
    ap.add_argument("--ledger", default=None,
                    help="JSONL run-ledger sink path")
    ap.add_argument("--report", default=None,
                    help="write the JSON report here (default stdout)")
    ap.add_argument("--json", action="store_true",
                    help="print the JSON report to stdout")
    args = ap.parse_args(argv)

    pool = build_payload_pool(202608, args.n, args.pool)
    refs = reference_results(pool, args.width)

    svc = SimulationService(
        workers=args.workers, max_queue=args.queue,
        default_deadline_s=args.deadline, engine_mode=args.engine_mode,
        width=args.width, ledger_path=args.ledger)

    plan = None
    if args.faults_seed is not None:
        # Detectable-and-recoverable vocabulary only: crashes and
        # freezes surface as typed errors the recovery ladder handles.
        # Silent single-bit corruption (corrupt/bitflip) is out of scope
        # for a service that has no reference to diff against — that
        # regime belongs to ``python -m repro.faults campaign``.
        plan = FaultPlan.generate(
            args.faults_seed,
            kernels=("dot", "axpy", "batched_dot", "batched_axpy"),
            channels=("in0", "in1", "bx", "by"),
            kinds=("crash", "freeze"),
            n_faults=args.faults, element_horizon=args.n,
            cycle_horizon=max(8, args.n // args.width))

    tickets: List[Tuple[Ticket, int]] = []
    tickets_lock = threading.Lock()
    sync_rejected = [0]
    overloads = [0]

    def tenant_loop(tid: int) -> None:
        rng = np.random.default_rng(1000 + tid)
        for k in range(args.requests):
            if args.invalid_every and (tid * args.requests + k) \
                    % args.invalid_every == args.invalid_every - 1:
                try:
                    svc.submit(RoutineJob("no_such_routine"),
                               tenant=f"tenant-{tid}")
                except AdmissionRejected:
                    with tickets_lock:
                        sync_rejected[0] += 1
                continue
            idx = int(rng.integers(len(pool)))
            routine, payload = pool[idx]
            try:
                t = svc.submit(RoutineJob(routine, payload),
                               tenant=f"tenant-{tid}",
                               deadline_s=args.deadline)
            except ServiceOverload:
                with tickets_lock:
                    overloads[0] += 1
                continue
            with tickets_lock:
                tickets.append((t, idx))

    t0 = time.perf_counter()

    def drive() -> None:
        threads = [threading.Thread(target=tenant_loop, args=(tid,))
                   for tid in range(args.tenants)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    if plan is not None:
        with inject(plan) as fctx:
            drive()
            fired = len(fctx.fired)
    else:
        drive()
        fired = 0

    lost = 0
    mismatches = 0
    outcome_hist: Dict[str, int] = {}
    for ticket, idx in tickets:
        try:
            value = ticket.result(timeout=120.0)
        except TimeoutError:
            lost += 1
            continue
        except Exception as exc:
            outcome_hist[type(exc).__name__] = \
                outcome_hist.get(type(exc).__name__, 0) + 1
            continue
        expected = refs[idx]
        same = (np.array_equal(np.asarray(value), np.asarray(expected))
                if isinstance(expected, np.ndarray)
                else np.float64(value) == np.float64(expected))
        if not same:
            mismatches += 1
    wall = time.perf_counter() - t0
    svc.close()

    q = LedgerQuery(svc.ledger.records()).filter(kind="service.request")
    unclassified = [r.run_id for r in q.records
                    if r.outcome not in KNOWN_OUTCOMES]
    report = {
        "schema": "repro.service.soak/1",
        "tenants": args.tenants,
        "requests_per_tenant": args.requests,
        "workers": args.workers,
        "engine_mode": args.engine_mode,
        "submitted": svc.stats()["submitted"],
        "admitted": len(tickets),
        "sync_rejected": sync_rejected[0],
        "overloads": overloads[0],
        "lost": lost,
        "mismatches": mismatches,
        "unclassified": unclassified,
        "faults_armed": len(plan) if plan is not None else 0,
        "faults_fired": fired,
        "wall_seconds": wall,
        "sustained_req_s": (len(tickets) / wall) if wall > 0 else 0.0,
        "outcomes": q.outcomes() if hasattr(q, "outcomes") else {},
        "per_tenant": q.tenant_summary(),
        "service_stats": svc.stats(),
    }
    text = json.dumps(report, indent=2, default=str)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(text + "\n")
    if args.json or not args.report:
        print(text)

    ok = (lost == 0 and mismatches == 0 and not unclassified)
    if not ok:
        print(f"SOAK FAILED: lost={lost} mismatches={mismatches} "
              f"unclassified={len(unclassified)}", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":                      # pragma: no cover
    sys.exit(main())
