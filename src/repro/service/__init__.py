"""Multi-tenant simulation service (robustness layer).

A session-multiplexing front end over the host API: many concurrent
tenants submit :class:`RoutineJob` / :class:`EngineJob` / :class:`AppJob`
requests to one :class:`SimulationService`, which admission-checks them
(FBxxx pre-flight), bounds them with deadlines and a bounded queue,
executes them on a supervised worker pool under the
:mod:`repro.faults` recovery ladder, degrades per-plan (never
per-fleet), fuses compatible small jobs into batched engine runs, and
records every outcome in the correlated run ledger.

``python -m repro.service`` runs the concurrent soak/smoke driver.
"""

from .errors import (AdmissionRejected, ServiceClosed, ServiceError,
                     ServiceOverload, invalid_request)
from .jobs import BATCHABLE_ROUTINES, AppJob, EngineJob, PlanJob, RoutineJob
from .service import SimulationService, Ticket

__all__ = [
    "AdmissionRejected", "AppJob", "BATCHABLE_ROUTINES", "EngineJob",
    "PlanJob", "RoutineJob", "ServiceClosed", "ServiceError",
    "ServiceOverload", "SimulationService", "Ticket", "invalid_request",
]
