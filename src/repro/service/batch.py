"""Fused batched engine runs for compatible small jobs.

The service's throughput lever (Table V of the paper: batched GEMV —
many small problems amortizing one pipeline's fixed costs).  A bulk-tier
engine run costs a near-constant setup overhead regardless of problem
size, so B small problems run back to back through *one* pipeline —
reading B*n-element concatenated buffers as a single regular patterned
region — cost barely more than one.  The batched kernels
(:func:`repro.blas.level1.batched_dot_kernel` /
:func:`~repro.blas.level1.batched_axpy_kernel`) reproduce each
segment's summation order exactly, so every job's result is
bit-identical to a separate single-caller run.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

import numpy as np

from ..blas import level1
from ..fpga.engine import Engine
from ..fpga.memory import read_kernel, write_kernel
from ..fpga.resources import level1_latency
from ..fpga.util import sink_kernel
from .jobs import RoutineJob

__all__ = ["run_batch"]

_SEQ = itertools.count()


def run_batch(context, jobs: Sequence[RoutineJob], mode: str, width: int,
              channel_depth: int = 256, schedule_cache=None) -> List:
    """Run compatible jobs as one fused engine run; per-job results.

    All jobs must share one :meth:`~RoutineJob.batch_key` (the caller
    groups them).  Buffers are bound under unique names and always
    released, so long-lived worker contexts do not accumulate garbage.
    """
    if not jobs:
        return []
    keys = {j.batch_key() for j in jobs}
    if len(keys) != 1 or None in keys:
        raise ValueError(f"jobs are not batch-compatible: {keys}")
    routine, n, _ = keys.pop()
    b = len(jobs)
    arrs = [j.arrays() for j in jobs]
    dtype = arrs[0][0].dtype.type
    precision = "double" if arrs[0][0].dtype == np.float64 else "single"

    mem = context.mem
    uid = next(_SEQ)
    names = [f"batch{uid}.x", f"batch{uid}.y", f"batch{uid}.out"]
    eng = Engine(memory=mem, mode=mode, schedule_cache=schedule_cache)
    cx = eng.channel("bx", channel_depth)
    cy = eng.channel("by", channel_depth)
    try:
        bx = mem.bind(names[0], np.concatenate([a[0] for a in arrs]))
        by = mem.bind(names[1], np.concatenate([a[1] for a in arrs]))
        eng.add_kernel("read_x", read_kernel(mem, bx, cx, width))
        eng.add_kernel("read_y", read_kernel(mem, by, cy, width))
        if routine == "dot":
            cres = eng.channel("bres", 4)
            out: List = []
            eng.add_kernel("batched_dot", level1.batched_dot_kernel(
                b, n, cx, cy, cres, width=width, dtype=dtype),
                latency=level1_latency("map_reduce", width, precision))
            eng.add_kernel("sink", sink_kernel(cres, b, 1, out))
            eng.run()
            return list(out)
        if routine == "axpy":
            alphas = [j.args[0] for j in jobs]
            co = eng.channel("bout", channel_depth)
            bo = mem.bind(names[2], np.zeros(b * n, dtype=dtype))
            eng.add_kernel("batched_axpy", level1.batched_axpy_kernel(
                b, n, alphas, cx, cy, co, width=width, dtype=dtype),
                latency=level1_latency("map", width, precision))
            eng.add_kernel("write", write_kernel(mem, bo, co, b * n, width))
            eng.run()
            flat = bo.data.copy()
            return [flat[i * n:(i + 1) * n] for i in range(b)]
        raise ValueError(f"no batched pipeline for routine {routine!r}")
    finally:
        for name in names:
            if name in mem.buffers:
                mem.release(name)
