"""Typed service-layer errors.

The class hierarchy is how the run ledger classifies outcomes
(:func:`repro.telemetry.ledger.classify_outcome` matches MRO class
*names*):

* :class:`ServiceOverload` -> ``"overload"`` — the bounded admission
  queue shed this request instead of buffering unboundedly.
* :class:`AdmissionRejected` -> ``"rejected"`` (via its
  :class:`~repro.analysis.AnalysisError` base) — the FBxxx pre-flight
  proved the design broken before any cycle was simulated; the full
  diagnostic list rides on the exception.
* :class:`~repro.fpga.errors.DeadlineExceeded` -> ``"deadline"`` is
  raised by the recovery ladder itself, not defined here.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisError, AnalysisResult, Diagnostic, Severity
from ..fpga.errors import ReproError

__all__ = ["AdmissionRejected", "ServiceClosed", "ServiceError",
           "ServiceOverload", "invalid_request"]


class ServiceError(ReproError):
    """Base class of service-layer failures."""


class ServiceOverload(ServiceError):
    """The admission queue is full: load was shed, try again later.

    Carries the queue bound so clients can implement informed backoff.
    """

    def __init__(self, message: str, queue_depth: Optional[int] = None):
        self.queue_depth = queue_depth
        super().__init__(message)


class ServiceClosed(ServiceError):
    """The service is shut down and no longer accepts submissions."""


class AdmissionRejected(AnalysisError):
    """Admission control rejected the request at submit time.

    A subclass of :class:`~repro.analysis.AnalysisError` so the ledger
    classifies it as ``"rejected"`` and callers that already handle
    pre-flight failures need no new except-clause.  ``result`` holds the
    full :class:`~repro.analysis.AnalysisResult` with every FBxxx
    diagnostic the analyzer produced.
    """


def invalid_request(message: str, obj: Optional[str] = None,
                    ) -> AdmissionRejected:
    """An :class:`AdmissionRejected` for malformed requests.

    Request-shape problems (unknown routine, mismatched vector lengths,
    non-float dtypes) are found before any design exists, so there is no
    analyzer run to attach — synthesize a one-diagnostic FB500 result so
    the rejection still carries a stable machine-readable code.
    """
    res = AnalysisResult(subject=obj or "service request")
    res.diagnostics.append(Diagnostic(
        code="FB500", severity=Severity.ERROR, message=message, obj=obj))
    return AdmissionRejected(res)
