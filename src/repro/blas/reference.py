"""Reference (host CPU) implementations of all 22 FBLAS routines.

These are the semantics the streaming kernels must match, and they double
as the tuned-CPU baseline of the paper's Sec. VI-D comparison (numpy
delegates to the host BLAS the way the paper's baseline delegates to MKL).

All functions follow classic BLAS semantics and argument order.  Vectors
and matrices are numpy arrays; the input dtype selects single or double
precision.  Functions never mutate their inputs unless the BLAS routine
semantically updates an argument, in which case the updated array is
*returned* (Python style) rather than overwritten in place.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Level 1
# ---------------------------------------------------------------------------

def rotg(a: float, b: float, dtype=np.float64) -> Tuple[float, float, float, float]:
    """Generate a Givens rotation: returns (r, z, c, s) per BLAS ROTG."""
    a = dtype(a)
    b = dtype(b)
    if b == 0:
        c, s, r, z = dtype(1), dtype(0), a, dtype(0)
        if a == 0:
            r = dtype(0)
        return r, z, c, s
    if a == 0:
        return b, dtype(1), dtype(0), dtype(1)
    sigma = np.sign(a) if abs(a) > abs(b) else np.sign(b)
    r = dtype(sigma * math.hypot(float(a), float(b)))
    c = dtype(a / r)
    s = dtype(b / r)
    z = s if abs(a) > abs(b) else (dtype(1) / c if c != 0 else dtype(1))
    return r, z, c, s


def rot(x: np.ndarray, y: np.ndarray, c: float, s: float
        ) -> Tuple[np.ndarray, np.ndarray]:
    """Apply a plane rotation: (x, y) <- (c*x + s*y, c*y - s*x)."""
    x = np.asarray(x)
    y = np.asarray(y)
    _check_same(x, y)
    c = x.dtype.type(c)
    s = x.dtype.type(s)
    return c * x + s * y, c * y - s * x


def rotmg(d1: float, d2: float, x1: float, y1: float, dtype=np.float64
          ) -> Tuple[float, float, float, np.ndarray]:
    """Generate a modified Givens rotation (BLAS ROTMG).

    Returns (d1', d2', x1', param) where param[0] is the flag and
    param[1:5] are h11, h21, h12, h22 as in the BLAS convention.
    """
    d1, d2, x1, y1 = (float(d1), float(d2), float(x1), float(y1))
    gam, gamsq, rgamsq = 4096.0, 4096.0 ** 2, 1.0 / 4096.0 ** 2
    param = np.zeros(5, dtype=dtype)
    if d1 < 0:
        param[0] = -1
        return 0.0, 0.0, 0.0, param
    p2 = d2 * y1
    if p2 == 0:
        param[0] = -2
        return d1, d2, x1, param
    p1 = d1 * x1
    q2 = p2 * y1
    q1 = p1 * x1
    if abs(q1) > abs(q2):
        h21 = -y1 / x1
        h12 = p2 / p1
        u = 1.0 - h12 * h21
        if u <= 0:
            param[0] = -1
            return 0.0, 0.0, 0.0, param
        flag = 0.0
        d1, d2 = d1 / u, d2 / u
        x1 *= u
        h11 = h22 = 1.0
    else:
        if q2 < 0:
            param[0] = -1
            return 0.0, 0.0, 0.0, param
        flag = 1.0
        h11 = p1 / p2
        h22 = x1 / y1
        u = 1.0 + h11 * h22
        d1, d2 = d2 / u, d1 / u
        x1 = y1 * u
        h21 = -1.0
        h12 = 1.0
    # rescaling loop, as in the reference BLAS
    while d1 != 0 and (d1 <= rgamsq or d1 >= gamsq):
        flag = -1.0
        if d1 <= rgamsq:
            d1 *= gamsq
            x1 /= gam
            h11 /= gam
            h12 /= gam
        else:
            d1 /= gamsq
            x1 *= gam
            h11 *= gam
            h12 *= gam
    while d2 != 0 and (abs(d2) <= rgamsq or abs(d2) >= gamsq):
        flag = -1.0
        if abs(d2) <= rgamsq:
            d2 *= gamsq
            h21 /= gam
            h22 /= gam
        else:
            d2 /= gamsq
            h21 *= gam
            h22 *= gam
    param[0] = flag
    if flag == -1.0:
        param[1:5] = h11, h21, h12, h22
    elif flag == 0.0:
        param[2], param[3] = h21, h12
    else:
        param[1], param[4] = h11, h22
    return d1, d2, x1, param


def rotm(x: np.ndarray, y: np.ndarray, param: np.ndarray
         ) -> Tuple[np.ndarray, np.ndarray]:
    """Apply a modified Givens rotation defined by ``param`` (BLAS ROTM)."""
    x = np.asarray(x)
    y = np.asarray(y)
    _check_same(x, y)
    flag = float(param[0])
    h11, h21, h12, h22 = (float(p) for p in param[1:5])
    if flag == -2.0:
        return x.copy(), y.copy()
    if flag == -1.0:
        pass
    elif flag == 0.0:
        h11, h22 = 1.0, 1.0
    elif flag == 1.0:
        h12, h21 = 1.0, -1.0
    else:
        raise ValueError(f"invalid rotm flag {flag}")
    t = x.dtype.type
    return t(h11) * x + t(h12) * y, t(h21) * x + t(h22) * y


def swap(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """SWAP: returns (y, x)."""
    _check_same(x, y)
    return np.array(y, copy=True), np.array(x, copy=True)


def scal(alpha: float, x: np.ndarray) -> np.ndarray:
    """SCAL: alpha * x."""
    x = np.asarray(x)
    return x.dtype.type(alpha) * x


def copy(x: np.ndarray) -> np.ndarray:
    """COPY: a fresh copy of x."""
    return np.array(x, copy=True)


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """AXPY: alpha*x + y."""
    _check_same(x, y)
    return np.asarray(x).dtype.type(alpha) * x + y


def dot(x: np.ndarray, y: np.ndarray) -> float:
    """DOT: x^T y."""
    _check_same(x, y)
    return np.asarray(x).dtype.type(np.dot(x, y))


def sdsdot(sb: float, x: np.ndarray, y: np.ndarray) -> np.float32:
    """SDSDOT: sb + x^T y accumulated in double, returned in single."""
    _check_same(x, y)
    acc = np.dot(np.asarray(x, dtype=np.float64), np.asarray(y, np.float64))
    return np.float32(sb + acc)


def nrm2(x: np.ndarray) -> float:
    """NRM2: the Euclidean norm of x."""
    x = np.asarray(x)
    return x.dtype.type(np.sqrt(np.dot(x.astype(np.float64),
                                       x.astype(np.float64))))


def asum(x: np.ndarray) -> float:
    """ASUM: sum of absolute values."""
    x = np.asarray(x)
    return x.dtype.type(np.sum(np.abs(x)))


def iamax(x: np.ndarray) -> int:
    """IAMAX: index of the first element with maximal absolute value."""
    x = np.asarray(x)
    if x.size == 0:
        raise ValueError("iamax of empty vector")
    return int(np.argmax(np.abs(x)))


# ---------------------------------------------------------------------------
# Level 2
# ---------------------------------------------------------------------------

def gemv(alpha: float, a: np.ndarray, x: np.ndarray, beta: float,
         y: np.ndarray, trans: bool = False) -> np.ndarray:
    """GEMV: alpha*op(A)*x + beta*y, op(A) = A or A^T."""
    a = np.asarray(a)
    op = a.T if trans else a
    if op.shape[1] != len(x) or op.shape[0] != len(y):
        raise ValueError(
            f"gemv shape mismatch: op(A) {op.shape}, x {len(x)}, y {len(y)}")
    t = a.dtype.type
    return t(alpha) * (op @ x) + t(beta) * y


def ger(alpha: float, x: np.ndarray, y: np.ndarray, a: np.ndarray) -> np.ndarray:
    """GER: A + alpha * x y^T."""
    a = np.asarray(a)
    if a.shape != (len(x), len(y)):
        raise ValueError(f"ger shape mismatch: A {a.shape} vs ({len(x)},{len(y)})")
    return a + a.dtype.type(alpha) * np.outer(x, y)


def syr(alpha: float, x: np.ndarray, a: np.ndarray) -> np.ndarray:
    """SYR: A + alpha * x x^T (generic dense storage)."""
    a = np.asarray(a)
    if a.shape != (len(x), len(x)):
        raise ValueError(f"syr shape mismatch: A {a.shape} vs n={len(x)}")
    return a + a.dtype.type(alpha) * np.outer(x, x)


def syr2(alpha: float, x: np.ndarray, y: np.ndarray, a: np.ndarray) -> np.ndarray:
    """SYR2: A + alpha * (x y^T + y x^T)."""
    a = np.asarray(a)
    if a.shape != (len(x), len(y)) or len(x) != len(y):
        raise ValueError("syr2 shape mismatch")
    t = a.dtype.type
    return a + t(alpha) * (np.outer(x, y) + np.outer(y, x))


def trsv(a: np.ndarray, b: np.ndarray, lower: bool = True,
         trans: bool = False, unit_diag: bool = False) -> np.ndarray:
    """TRSV: solve op(A) x = b for triangular A."""
    a = np.asarray(a)
    n = len(b)
    if a.shape != (n, n):
        raise ValueError(f"trsv shape mismatch: A {a.shape}, b {n}")
    op = a.T if trans else a
    low = lower != trans
    x = np.array(b, dtype=a.dtype, copy=True)
    order = range(n) if low else range(n - 1, -1, -1)
    for i in order:
        js = range(i) if low else range(i + 1, n)
        acc = x.dtype.type(0)
        for j in js:
            acc += op[i, j] * x[j]
        x[i] = x[i] - acc
        if not unit_diag:
            x[i] = x[i] / op[i, i]
    return x


# ---------------------------------------------------------------------------
# Level 3
# ---------------------------------------------------------------------------

def gemm(alpha: float, a: np.ndarray, b: np.ndarray, beta: float,
         c: np.ndarray, trans_a: bool = False, trans_b: bool = False
         ) -> np.ndarray:
    """GEMM: alpha*op(A)op(B) + beta*C."""
    a = np.asarray(a)
    b = np.asarray(b)
    c = np.asarray(c)
    opa = a.T if trans_a else a
    opb = b.T if trans_b else b
    if opa.shape[1] != opb.shape[0] or c.shape != (opa.shape[0], opb.shape[1]):
        raise ValueError(
            f"gemm shape mismatch: op(A) {opa.shape}, op(B) {opb.shape}, "
            f"C {c.shape}")
    t = a.dtype.type
    return t(alpha) * (opa @ opb) + t(beta) * c


def syrk(alpha: float, a: np.ndarray, beta: float, c: np.ndarray,
         trans: bool = False) -> np.ndarray:
    """SYRK: alpha*A A^T + beta*C (or alpha*A^T A with trans)."""
    a = np.asarray(a)
    op = a.T if trans else a
    if c.shape != (op.shape[0], op.shape[0]):
        raise ValueError("syrk shape mismatch")
    t = a.dtype.type
    return t(alpha) * (op @ op.T) + t(beta) * np.asarray(c)


def syr2k(alpha: float, a: np.ndarray, b: np.ndarray, beta: float,
          c: np.ndarray, trans: bool = False) -> np.ndarray:
    """SYR2K: alpha*(A B^T + B A^T) + beta*C."""
    a = np.asarray(a)
    b = np.asarray(b)
    opa, opb = (a.T, b.T) if trans else (a, b)
    if c.shape != (opa.shape[0], opa.shape[0]):
        raise ValueError("syr2k shape mismatch")
    t = a.dtype.type
    return t(alpha) * (opa @ opb.T + opb @ opa.T) + t(beta) * np.asarray(c)


def trsm(alpha: float, a: np.ndarray, b: np.ndarray, side: str = "left",
         lower: bool = True, trans: bool = False,
         unit_diag: bool = False) -> np.ndarray:
    """TRSM: solve op(A) X = alpha*B (left) or X op(A) = alpha*B (right)."""
    a = np.asarray(a)
    b = np.asarray(b)
    t = a.dtype.type
    rhs = t(alpha) * b
    if side == "left":
        x = np.empty_like(rhs)
        for j in range(rhs.shape[1]):
            x[:, j] = trsv(a, rhs[:, j], lower=lower, trans=trans,
                           unit_diag=unit_diag)
        return x
    if side == "right":
        # X op(A) = alpha*B  <=>  op(A)^T X^T = alpha*B^T
        xt = np.empty_like(rhs.T)
        for j in range(rhs.shape[0]):
            xt[:, j] = trsv(a, rhs.T[:, j], lower=lower, trans=not trans,
                            unit_diag=unit_diag)
        return xt.T
    raise ValueError(f"side must be 'left' or 'right', got {side!r}")


def _check_same(x, y) -> None:
    if len(x) != len(y):
        raise ValueError(f"vector length mismatch: {len(x)} vs {len(y)}")
