"""All 22 FBLAS routines: numpy references, streaming kernels, systolic GEMM."""

from . import level1, level2, level3, reference
from .routines import REGISTRY, RoutineInfo, all_routines, info
from .systolic import (
    PE_FANOUT,
    SystolicConfig,
    SystolicGemm,
    SystolicStats,
    pad_operands,
)

__all__ = [
    "PE_FANOUT", "REGISTRY", "RoutineInfo", "SystolicConfig", "SystolicGemm",
    "SystolicStats", "all_routines", "info", "level1", "level2", "level3",
    "pad_operands", "reference",
]
