"""The systolic GEMM as a *structural* kernel composition (Fig. 3).

:mod:`repro.blas.systolic` simulates the PE grid at register level for
speed.  This module builds the same architecture out of actual engine
kernels and channels — READ A/B helpers, the FEED-A/FEED-B distribution
chains, one kernel per processing element, the DRAIN-C collectors, and
STORE C — so the paper's structural claims are *checked by construction*:

* every PE touches exactly six links (a/b/c in and out), independent of
  the array size;
* feeders and drainers form linear chains (constant fan-out everywhere);
* no global synchronization exists — the blocking FIFOs self-time the
  wavefront that the register-level simulation realizes with explicit
  skew.

It is slower (one Python generator per PE) and meant for small arrays;
the tests cross-check its results and cycle counts against the
register-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..fpga.engine import Engine, SimReport
from ..fpga.kernel import Clock, Pop, Push
from .systolic import SystolicConfig


def read_a_kernel(a_tile: np.ndarray, pr: int, e_per: int, blocks_c: int,
                  chain):
    """READ A: per step s = k*E + e, push the PR-element column strip
    A[rb*PR : (rb+1)*PR, k] into the feeder chain."""
    k_dim = a_tile.shape[1]
    for kk in range(k_dim):
        for e in range(e_per):
            rb = e // blocks_c
            vals = tuple(a_tile[rb * pr + i, kk] for i in range(pr))
            yield Push(chain, vals, 1)
            yield Clock()


def read_b_kernel(b_tile: np.ndarray, pc: int, e_per: int, blocks_c: int,
                  chain):
    """READ B: per step, the PC-element row strip B[k, cb*PC:(cb+1)*PC]."""
    k_dim = b_tile.shape[0]
    for kk in range(k_dim):
        for e in range(e_per):
            cb = e % blocks_c
            vals = tuple(b_tile[kk, cb * pc + j] for j in range(pc))
            yield Push(chain, vals, 1)
            yield Clock()


def feeder_kernel(index, count, steps, chain_in, chain_out, pe_ch):
    """FEED-A_i / FEED-B_j: keep this row/column's value, pass the rest on.

    Receives ``count - index`` values per step; the first belongs to this
    feeder's PE row/column, the remainder continues down the chain — the
    shift-register distribution of the Intel formulation.
    """
    rem = count - index
    for _s in range(steps):
        vals = yield Pop(chain_in, rem)
        if rem == 1:
            vals = (vals,)
        yield Push(pe_ch, (vals[0],), 1)
        if chain_out is not None:
            yield Push(chain_out, tuple(vals[1:]), 1)
        yield Clock()


def pe_kernel(row, steps, e_per, a_in, a_out, b_in, b_out, c_in, c_out,
              dtype):
    """One processing element: six links, one MAC per cycle (Sec. III-C).

    Computes for ``steps`` cycles (revisiting each of its ``e_per`` local
    C elements every e_per cycles), then drains: its own results first,
    followed by everything arriving from the PE above — a pipelined
    column drain with constant fan-out.
    """
    acc = [dtype(0)] * e_per
    for s in range(steps):
        a = yield Pop(a_in, 1)
        b = yield Pop(b_in, 1)
        if a_out is not None:
            yield Push(a_out, (a,), 1)
        if b_out is not None:
            yield Push(b_out, (b,), 1)
        acc[s % e_per] = acc[s % e_per] + dtype(a) * dtype(b)
        yield Clock()
    for v in acc:
        yield Push(c_out, (v,), 1)
        yield Clock()
    for _ in range(row * e_per):
        v = yield Pop(c_in, 1)
        yield Push(c_out, (v,), 1)
        yield Clock()


def store_c_kernel(pr, pc, e_per, blocks_c, drain_chs, tile_r, tile_c,
                   out: List):
    """STORE C: collect each column's drained values and assemble the tile.

    Column j delivers rows bottom-up (PE PR-1 first, own-results-first
    order), each PE contributing its e_per cyclically-owned elements.
    """
    tile = np.zeros((tile_r, tile_c), dtype=np.float64)
    for j, ch in enumerate(drain_chs):
        for i_rev in range(pr):
            i = pr - 1 - i_rev
            for e in range(e_per):
                v = yield Pop(ch, 1)
                rb = e // blocks_c
                cb = e % blocks_c
                tile[rb * pr + i, cb * pc + j] = v
            yield Clock()
    out.append(tile)


@dataclass
class StructuralReport:
    """Result of a structural systolic run."""

    tile: np.ndarray
    sim: SimReport
    num_kernels: int
    max_links_per_pe: int


def run_structural_gemm(a: np.ndarray, b: np.ndarray,
                        config: SystolicConfig,
                        dtype=np.float32) -> StructuralReport:
    """Build and run the full Fig. 3 composition for one memory tile."""
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    pr, pc = config.pr, config.pc
    tr, tc = config.tile_r, config.tile_c
    if a.shape[0] != tr or b.shape[1] != tc or a.shape[1] != b.shape[0]:
        raise ValueError(
            f"operands {a.shape} x {b.shape} do not match the memory tile "
            f"{tr}x{tc}")
    k_dim = a.shape[1]
    e_per = config.elems_per_pe
    blocks_c = tc // pc
    steps = k_dim * e_per

    eng = Engine()
    # Feeder distribution chains (shift registers in the single-kernel
    # Intel formulation).
    a_chain = [eng.channel(f"a_chain{i}", max(4, pr)) for i in range(pr)]
    b_chain = [eng.channel(f"b_chain{j}", max(4, pc)) for j in range(pc)]
    # PE mesh links.
    a_link = {}
    b_link = {}
    c_link = {}
    for i in range(pr):
        for j in range(pc):
            a_link[(i, j)] = eng.channel(f"a_{i}_{j}", 4)
            b_link[(i, j)] = eng.channel(f"b_{i}_{j}", 4)
            c_link[(i, j)] = eng.channel(f"c_{i}_{j}", max(4, e_per))
    drain = [eng.channel(f"drain_{j}", max(4, pr * e_per))
             for j in range(pc)]

    eng.add_kernel("read_a", read_a_kernel(a, pr, e_per, blocks_c,
                                           a_chain[0]))
    eng.add_kernel("read_b", read_b_kernel(b, pc, e_per, blocks_c,
                                           b_chain[0]))
    for i in range(pr):
        nxt = a_chain[i + 1] if i + 1 < pr else None
        eng.add_kernel(f"feed_a{i}", feeder_kernel(
            i, pr, steps, a_chain[i], nxt, a_link[(i, 0)]))
    for j in range(pc):
        nxt = b_chain[j + 1] if j + 1 < pc else None
        eng.add_kernel(f"feed_b{j}", feeder_kernel(
            j, pc, steps, b_chain[j], nxt, b_link[(0, j)]))

    links_per_pe = 0
    for i in range(pr):
        for j in range(pc):
            a_out = a_link[(i, j + 1)] if j + 1 < pc else None
            b_out = b_link[(i + 1, j)] if i + 1 < pr else None
            c_in = c_link[(i - 1, j)] if i > 0 else c_link[(i, j)]
            c_out = c_link[(i, j)] if i + 1 < pr else drain[j]
            # Count this PE's live links (the constant-fan-out property).
            links = 2 + (a_out is not None) + (b_out is not None) + 2
            links_per_pe = max(links_per_pe, links)
            eng.add_kernel(f"pe_{i}_{j}", pe_kernel(
                i, steps, e_per, a_link[(i, j)], a_out, b_link[(i, j)],
                b_out, c_in if i > 0 else _never_channel(), c_out, dtype))

    out: List[np.ndarray] = []
    eng.add_kernel("store_c", store_c_kernel(
        pr, pc, e_per, blocks_c, drain, tr, tc, out))
    report = eng.run()
    return StructuralReport(tile=np.asarray(out[0], dtype=dtype),
                            sim=report,
                            num_kernels=len(eng.kernels),
                            max_links_per_pe=links_per_pe)


class _NeverChannel:
    """Placeholder for the top row's absent c_in: popping it is a bug."""

    name = "<none>"
    depth = 1

    def can_pop(self, count=1):  # pragma: no cover - defensive
        raise RuntimeError("top-row PE must not pop a drain input")


def _never_channel():
    return _NeverChannel()


def run_structural_gemm_tiled(a: np.ndarray, b: np.ndarray,
                              config: SystolicConfig,
                              dtype=np.float32) -> Tuple[np.ndarray, int]:
    """Run the structural array over every memory tile of a larger result.

    The hardware computes one TR x TC tile per pass (the helper kernels
    re-read the operand strips per tile); this wrapper sequences the
    passes and assembles C.  Returns (C, total_cycles).
    """
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    n, k = a.shape
    k2, m = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    tr, tc = config.tile_r, config.tile_c
    if n % tr or m % tc:
        raise ValueError(
            f"result {n}x{m} must divide into memory tiles {tr}x{tc}")
    out = np.empty((n, m), dtype=dtype)
    cycles = 0
    for ti in range(n // tr):
        for tj in range(m // tc):
            rep = run_structural_gemm(
                a[ti * tr:(ti + 1) * tr, :],
                b[:, tj * tc:(tj + 1) * tc], config, dtype)
            out[ti * tr:(ti + 1) * tr, tj * tc:(tj + 1) * tc] = rep.tile
            cycles += rep.sim.cycles
    return out, cycles
