"""Cycle-level simulation of the 2D systolic GEMM (Sec. III-C, Fig. 3).

A grid of PR x PC processing elements computes one TR x TC tile of C at a
time (TR, TC are the *memory tile*, multiples of the *compute tile* PR,
PC).  Elements of A enter the west edge and travel east; elements of B
enter the north edge and travel south; each PE multiplies the pair passing
through it and accumulates into its TR*TC/(PR*PC) locally-held elements of
C, revisiting each element every TR*TC/(PR*PC) cycles.  Feeders skew the
injection by one cycle per row/column (shift registers in the Intel
single-kernel formulation) so matching operands meet; every PE therefore
has a constant fan-out of 6 links (a/b/c in and out) regardless of the
array size — the property that makes the design scale where naive
unrolling's high fan-out fails.

The simulation below advances the register state of the whole grid one
clock at a time (vectorized over the PEs with numpy), so cycle counts,
wavefront skew, and drain overlap are measured, not assumed.  The analytic
model in :func:`repro.models.performance.gemm_systolic_cycles` is checked
against these measurements in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Data links per PE: a_in/a_out, b_in/b_out, c_in/c_out.
PE_FANOUT = 6


@dataclass(frozen=True)
class SystolicConfig:
    """Geometry of the systolic array.

    ``pr`` x ``pc`` is the compute tile (the PE grid); ``tile_r`` x
    ``tile_c`` is the memory tile of C each pass computes.
    """

    pr: int
    pc: int
    tile_r: int
    tile_c: int

    def __post_init__(self):
        if self.pr < 1 or self.pc < 1:
            raise ValueError("PE grid dimensions must be positive")
        if self.tile_r % self.pr or self.tile_c % self.pc:
            raise ValueError(
                f"memory tile {self.tile_r}x{self.tile_c} must be a "
                f"multiple of the compute tile {self.pr}x{self.pc}")

    @property
    def elems_per_pe(self) -> int:
        """C elements each PE owns: TR*TC/(PR*PC)."""
        return (self.tile_r // self.pr) * (self.tile_c // self.pc)

    @property
    def num_pes(self) -> int:
        return self.pr * self.pc

    @property
    def ratio(self) -> float:
        """Memory-tile to compute-tile ratio (the Fig. 10 right x-axis)."""
        return self.tile_r / self.pr


@dataclass
class SystolicStats:
    """Measured activity of one multiply."""

    cycles: int = 0
    macs: int = 0
    tiles: int = 0
    drain_cycles: int = 0

    def pe_utilization(self, config: SystolicConfig) -> float:
        """Fraction of PE-cycles that performed a MAC."""
        if self.cycles == 0:
            return 0.0
        return self.macs / (self.cycles * config.num_pes)


class SystolicGemm:
    """Simulate C' = alpha*A*B + beta*C on the systolic array."""

    def __init__(self, config: SystolicConfig, dtype=np.float32):
        self.config = config
        self.dtype = dtype

    def multiply(self, a: np.ndarray, b: np.ndarray, alpha: float = 1.0,
                 beta: float = 0.0, c: np.ndarray | None = None
                 ) -> tuple[np.ndarray, SystolicStats]:
        """Run the array over all memory tiles of the result."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        n, k = a.shape
        k2, m = b.shape
        if k != k2:
            raise ValueError(f"inner dimensions differ: {k} vs {k2}")
        cfg = self.config
        if n % cfg.tile_r or m % cfg.tile_c:
            raise ValueError(
                f"result {n}x{m} must divide into memory tiles "
                f"{cfg.tile_r}x{cfg.tile_c} (pad the operands)")
        if c is None:
            c = np.zeros((n, m), dtype=self.dtype)
        out = np.empty((n, m), dtype=self.dtype)
        stats = SystolicStats()
        for ti in range(n // cfg.tile_r):
            r0 = ti * cfg.tile_r
            for tj in range(m // cfg.tile_c):
                c0 = tj * cfg.tile_c
                tile, cyc, macs, drain = self._run_tile(
                    a[r0:r0 + cfg.tile_r, :], b[:, c0:c0 + cfg.tile_c])
                out[r0:r0 + cfg.tile_r, c0:c0 + cfg.tile_c] = (
                    self.dtype(alpha) * tile
                    + self.dtype(beta) * c[r0:r0 + cfg.tile_r,
                                           c0:c0 + cfg.tile_c])
                stats.cycles += cyc
                stats.macs += macs
                stats.drain_cycles += drain
                stats.tiles += 1
        return out, stats

    def _run_tile(self, a_tile: np.ndarray, b_tile: np.ndarray):
        """Register-level simulation of one memory tile.

        Returns (C_tile, cycles, macs, drain_cycles).
        """
        cfg = self.config
        pr, pc = cfg.pr, cfg.pc
        tr, tc = cfg.tile_r, cfg.tile_c
        k = a_tile.shape[1]
        e_per = cfg.elems_per_pe
        blocks_c = tc // pc                   # owned C columns per PE
        steps = k * e_per                     # compute steps per tile

        # PE-local state: the a/b registers and the C accumulators.
        a_reg = np.zeros((pr, pc), dtype=self.dtype)
        b_reg = np.zeros((pr, pc), dtype=self.dtype)
        acc = np.zeros((pr, pc, e_per), dtype=self.dtype)

        ii, jj = np.meshgrid(np.arange(pr), np.arange(pc), indexing="ij")
        skew = ii + jj
        macs = 0
        total_cycles = steps + pr + pc - 1    # last PE finishes last step
        for t in range(total_cycles):
            # Shift registers: A moves east, B moves south.
            a_reg[:, 1:] = a_reg[:, :-1]
            b_reg[1:, :] = b_reg[:-1, :]
            # Feeders inject step s = t - i into row i (A, west edge) and
            # step s = t - j into column j (B, north edge).
            for i in range(pr):
                s = t - i
                if 0 <= s < steps:
                    e, kk = s % e_per, s // e_per
                    rb = e // blocks_c
                    a_reg[i, 0] = a_tile[rb * pr + i, kk]
                else:
                    a_reg[i, 0] = 0
            for j in range(pc):
                s = t - j
                if 0 <= s < steps:
                    e, kk = s % e_per, s // e_per
                    cb = e % blocks_c
                    b_reg[0, j] = b_tile[kk, cb * pc + j]
                else:
                    b_reg[0, j] = 0
            # Each PE processes step s = t - i - j, if in range.
            s_grid = t - skew
            active = (s_grid >= 0) & (s_grid < steps)
            if not active.any():
                continue
            e_grid = s_grid % e_per
            prod = a_reg * b_reg
            idx = np.nonzero(active)
            acc[idx[0], idx[1], e_grid[idx]] += prod[idx]
            macs += int(active.sum())

        # Reassemble the tile from the cyclic ownership layout:
        # PE (i, j) element e = rb*blocks_c + cb holds C[rb*pr+i, cb*pc+j].
        tile = np.empty((tr, tc), dtype=self.dtype)
        for rb in range(tr // pr):
            for cb in range(blocks_c):
                e = rb * blocks_c + cb
                tile[rb * pr:(rb + 1) * pr, cb * pc:(cb + 1) * pc] = acc[:, :, e]

        # Drain: each PE forwards its e_per results down its column into
        # the drainers, pipelined — e_per + pr cycles, overlapped per
        # column (constant fan-out preserved).
        drain = e_per + pr
        return tile, total_cycles + drain, macs, drain

    def expected_cycles(self, n: int, m: int, k: int) -> int:
        """Analytic cycle estimate (cross-checked against the simulation)."""
        cfg = self.config
        tiles = math.ceil(n / cfg.tile_r) * math.ceil(m / cfg.tile_c)
        per_tile = (k * cfg.elems_per_pe + cfg.pr + cfg.pc - 1
                    + cfg.elems_per_pe + cfg.pr)
        return tiles * per_tile


def pad_operands(a: np.ndarray, b: np.ndarray, config: SystolicConfig
                 ) -> tuple[np.ndarray, np.ndarray, tuple[int, int]]:
    """Zero-pad A and B so the result divides into memory tiles.

    Returns the padded operands and the original result shape, so callers
    can slice the padding back off.
    """
    n, k = a.shape
    _, m = b.shape
    n_pad = math.ceil(n / config.tile_r) * config.tile_r
    m_pad = math.ceil(m / config.tile_c) * config.tile_c
    a2 = np.zeros((n_pad, k), dtype=a.dtype)
    a2[:n, :] = a
    b2 = np.zeros((k, m_pad), dtype=b.dtype)
    b2[:, :m] = b
    return a2, b2, (n, m)
