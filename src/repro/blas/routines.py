"""Routine registry: the 22 routines FBLAS offers (Sec. VI).

Each entry records the BLAS level, the inner-loop class (map vs
map-reduce, Sec. IV-A), the streaming ports, and which parameters are
functional (change routine semantics) vs non-functional (vectorization
width, tile sizes) — the distinction the code generator's routine
specification file draws (Sec. II-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class RoutineInfo:
    """Static description of one library routine."""

    name: str
    level: int
    inner_class: str                 # "map" or "map_reduce"
    inputs: Tuple[str, ...]          # streaming input ports
    outputs: Tuple[str, ...]         # streaming output ports
    scalars: Tuple[str, ...] = ()    # scalar parameters
    functional: Tuple[str, ...] = ()  # functional parameters (semantics)
    supports_tiling: bool = False

    @property
    def operands_per_lane(self) -> int:
        """Stream operands one vector lane consumes per cycle.

        Drives the optimal-width formula W = ceil(B/(k*S*F)): DOT pops one
        x and one y per lane (k=2), SCAL only one x (k=1).
        """
        return max(1, len(self.inputs))

    def static_pattern(self, channels: Dict[str, object], width: int = 1,
                       ii: int = 1):
        """Derive a declare-only :class:`~repro.fpga.pattern.StaticPattern`.

        ``channels`` maps this routine's streaming port names to channel
        objects; every port must be bound.  The result documents the
        steady port rates (``width`` lanes per port at initiation
        interval ``ii``) for analysis and the bulk engine, without an
        executable fast path — module builders that *can* prove a
        vectorizable steady loop attach their own executable pattern
        instead (see :mod:`repro.blas.level1`).
        """
        from ..fpga.pattern import StaticPattern
        missing = [p for p in self.inputs + self.outputs
                   if p not in channels]
        if missing:
            raise KeyError(
                f"routine {self.name!r}: unbound streaming ports "
                f"{missing} (expected {self.inputs + self.outputs})")
        return StaticPattern.declare(
            reads=tuple((channels[p], width) for p in self.inputs),
            writes=tuple((channels[p], width, None) for p in self.outputs),
            ii=ii)


REGISTRY: Dict[str, RoutineInfo] = {}


def _register(info: RoutineInfo) -> None:
    REGISTRY[info.name] = info


# -- Level 1 ---------------------------------------------------------------
_register(RoutineInfo("rotg", 1, "map", ("ab",), ("out",)))
_register(RoutineInfo("rotmg", 1, "map", ("in",), ("out",)))
_register(RoutineInfo("rot", 1, "map", ("x", "y"), ("out_x", "out_y"),
                      scalars=("c", "s")))
_register(RoutineInfo("rotm", 1, "map", ("x", "y"), ("out_x", "out_y"),
                      scalars=("param",)))
_register(RoutineInfo("swap", 1, "map", ("x", "y"), ("out_x", "out_y")))
_register(RoutineInfo("scal", 1, "map", ("x",), ("out",), scalars=("alpha",)))
_register(RoutineInfo("copy", 1, "map", ("x",), ("out",)))
_register(RoutineInfo("axpy", 1, "map", ("x", "y"), ("out",),
                      scalars=("alpha",)))
_register(RoutineInfo("dot", 1, "map_reduce", ("x", "y"), ("res",)))
_register(RoutineInfo("sdsdot", 1, "map_reduce", ("x", "y"), ("res",),
                      scalars=("sb",)))
_register(RoutineInfo("nrm2", 1, "map_reduce", ("x",), ("res",)))
_register(RoutineInfo("asum", 1, "map_reduce", ("x",), ("res",)))
_register(RoutineInfo("iamax", 1, "map_reduce", ("x",), ("res",)))

# -- Level 2 ---------------------------------------------------------------
_register(RoutineInfo("gemv", 2, "map_reduce", ("A", "x", "y"), ("out",),
                      scalars=("alpha", "beta"),
                      functional=("trans", "tiles"), supports_tiling=True))
_register(RoutineInfo("trsv", 2, "map_reduce", ("A", "b"), ("out",),
                      functional=("lower", "unit_diag"),
                      supports_tiling=False))
_register(RoutineInfo("ger", 2, "map", ("A", "x", "y"), ("out",),
                      scalars=("alpha",), functional=("tiles",),
                      supports_tiling=True))
_register(RoutineInfo("syr", 2, "map", ("A", "x_row", "x_col"), ("out",),
                      scalars=("alpha",), functional=("tiles",),
                      supports_tiling=True))
_register(RoutineInfo("syr2", 2, "map",
                      ("A", "x_row", "y_col", "y_row", "x_col"), ("out",),
                      scalars=("alpha",), functional=("tiles",),
                      supports_tiling=True))

# -- Level 3 ---------------------------------------------------------------
_register(RoutineInfo("gemm", 3, "map_reduce", ("A", "B", "C"), ("out",),
                      scalars=("alpha", "beta"),
                      functional=("trans_a", "trans_b", "tiles"),
                      supports_tiling=True))
_register(RoutineInfo("syrk", 3, "map_reduce", ("A", "At", "C"), ("out",),
                      scalars=("alpha", "beta"), functional=("trans", "tiles"),
                      supports_tiling=True))
_register(RoutineInfo("syr2k", 3, "map_reduce",
                      ("A", "Bt", "B", "At", "C"), ("out",),
                      scalars=("alpha", "beta"), functional=("trans", "tiles"),
                      supports_tiling=True))
_register(RoutineInfo("trsm", 3, "map_reduce", ("A", "B"), ("out",),
                      scalars=("alpha",),
                      functional=("side", "lower", "unit_diag"),
                      supports_tiling=False))


def info(name: str) -> RoutineInfo:
    """Look up a routine (case-insensitive, accepts s/d prefixes)."""
    key = name.lower()
    if key not in REGISTRY and key[:1] in ("s", "d") and key[1:] in REGISTRY:
        key = key[1:]
    if key not in REGISTRY:
        raise KeyError(f"unknown routine {name!r}")
    return REGISTRY[key]


def all_routines() -> Tuple[str, ...]:
    return tuple(REGISTRY)


assert len(REGISTRY) == 22, "FBLAS offers exactly 22 routines"
