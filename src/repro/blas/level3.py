"""Streaming Level-3 kernels.

:func:`gemm_tiled` is the generic streaming GEMM used inside compositions
(the high-throughput spatial implementation is the systolic array in
:mod:`repro.blas.systolic`).  SYRK/SYR2K/TRSM are built on the generic
kernels, as the paper prescribes for specialized matrix routines
("Specialized matrix routines ... must currently be implemented in terms
of the generic routines").

Fully-unrolled tiny-matrix kernels (:func:`gemm_unrolled`,
:func:`trsm_unrolled`) accept a complete problem per clock cycle; they are
the designs behind Table V's batched comparison.
"""

from __future__ import annotations

import numpy as np

from ..fpga.kernel import Clock, Pop, Push
from .level2 import _pop_block, _push_block, shard_row_tiles
from . import reference


def gemm_tiled(n, m, k, alpha, beta, ch_a, ch_b, ch_c, ch_out,
               tile_n, tile_m, width=1, dtype=np.float32):
    """GEMM C' = alpha*A*B + beta*C with an on-chip T_N x T_M C tile.

    Stream contract, per C tile (ti, tj), for kk = 0..K-1:

    * ``ch_a`` delivers the A strip column A[ti*T_N:(ti+1)*T_N, kk]
      (T_N elements) — i.e. A is replayed ceil(M/T_M) times overall;
    * ``ch_b`` delivers the B strip row B[kk, tj*T_M:(tj+1)*T_M]
      (T_M elements) — i.e. B is replayed ceil(N/T_N) times overall;
    * ``ch_c`` delivers the C tile (row-major) once before accumulation,
      and ``ch_out`` receives the finished tile in the same order.

    I/O complexity: NMK/T_M (A) + NMK/T_N (B) + 2NM (C), the classic tiled
    matrix-multiply volume the memory tile sizes control.
    """
    _check(n, tile_n, m, tile_m)
    if k < 1:
        raise ValueError("k must be positive")
    alpha = dtype(alpha)
    beta = dtype(beta)
    for ti in range(n // tile_n):
        for tj in range(m // tile_m):
            ctile = yield from _pop_block(ch_c, tile_n * tile_m, width)
            acc = [[dtype(0)] * tile_m for _ in range(tile_n)]
            for kk in range(k):
                a_col = yield from _pop_block(ch_a, tile_n, width)
                b_row = yield from _pop_block(ch_b, tile_m, width)
                for r in range(tile_n):
                    ar = dtype(a_col[r])
                    row = acc[r]
                    done = 0
                    while done < tile_m:
                        c = min(width, tile_m - done)
                        for j in range(done, done + c):
                            row[j] = row[j] + ar * dtype(b_row[j])
                        yield Clock()
                        done += c
            out = []
            for r in range(tile_n):
                for j in range(tile_m):
                    out.append(alpha * acc[r][j]
                               + beta * dtype(ctile[r * tile_m + j]))
            yield from _push_block(ch_out, out, width)


# ---------------------------------------------------------------------------
# Sharded multi-lane GEMM (HBM many-channel placement)
# ---------------------------------------------------------------------------

def shard_gemm_streams(a, b, c, tile_n, tile_m, lanes, dtype=np.float32):
    """Host-side pre-sharding for :func:`gemm_tiled_sharded`.

    Returns ``(a_streams, b_streams, c_streams)``: per lane, the flat A
    strip-column stream, B strip-row stream and C tile stream in exactly
    the order the lane's :func:`gemm_tiled` instance consumes them (its
    C row tiles in ascending global order).
    """
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    c = np.asarray(c, dtype=dtype)
    n, k = a.shape
    m = b.shape[1]
    _check(n, tile_n, m, tile_m)
    parts = shard_row_tiles(n, tile_n, lanes)
    col_tiles = m // tile_m
    a_streams, b_streams, c_streams = [], [], []
    for tiles in parts:
        a_blocks, b_blocks, c_blocks = [], [], []
        for ti in tiles:
            rows = slice(ti * tile_n, (ti + 1) * tile_n)
            for tj in range(col_tiles):
                cols = slice(tj * tile_m, (tj + 1) * tile_m)
                c_blocks.append(c[rows, cols].reshape(-1))
                for kk in range(k):
                    a_blocks.append(a[rows, kk])
                    b_blocks.append(b[kk, cols])
        a_streams.append(np.concatenate(a_blocks))
        b_streams.append(np.concatenate(b_blocks))
        c_streams.append(np.concatenate(c_blocks))
    return a_streams, b_streams, c_streams


def gemm_tiled_sharded(n, m, k, alpha, beta, lane_ports, ch_out,
                       tile_n, tile_m, width=1, dtype=np.float32):
    """Multi-lane GEMM: C row tiles striped across lanes, merged in order.

    ``lane_ports`` is one ``(ch_a, ch_b, ch_c, ch_part)`` tuple per lane.
    Each lane runs an unmodified :func:`gemm_tiled` over its share of C
    row tiles (round-robin, via :func:`~repro.blas.level2.shard_row_tiles`),
    so every output tile's arithmetic is exactly the single-lane
    computation; a :func:`~repro.fpga.util.merge_kernel` reassembles the
    T_N*T_M tiles into global (ti, tj) order on ``ch_out``.  Bitwise
    identical to the single-lane kernel while each lane's A/B/C streams
    can live in their own memory channels.

    Returns ``(lane_gens, merge_gen)``; register each as a kernel.
    """
    from ..fpga.util import merge_kernel

    lanes = len(lane_ports)
    _check(n, tile_n, m, tile_m)
    parts = shard_row_tiles(n, tile_n, lanes)
    lane_gens = []
    for (ch_a, ch_b, ch_c, ch_part), tiles in zip(lane_ports, parts):
        lane_gens.append(gemm_tiled(
            len(tiles) * tile_n, m, k, alpha, beta, ch_a, ch_b, ch_c,
            ch_part, tile_n, tile_m, width, dtype))
    schedule = [(ti % lanes, tile_n * tile_m)
                for ti in range(n // tile_n)
                for _ in range(m // tile_m)]
    merge = merge_kernel([p[3] for p in lane_ports], ch_out, schedule,
                         width)
    return lane_gens, merge


def syrk_tiled(n, k, alpha, beta, ch_a, ch_at, ch_c, ch_out,
               tile_n, tile_m, width=1, dtype=np.float32):
    """SYRK C' = alpha*A*A^T + beta*C on generic dense storage.

    Delegates to :func:`gemm_tiled`; the interface layer streams A on
    ``ch_a`` (strip columns) and A^T on ``ch_at`` (strip rows), which for
    SYRK are two differently-ordered reads of the same buffer.
    """
    yield from gemm_tiled(n, n, k, alpha, beta, ch_a, ch_at, ch_c, ch_out,
                          tile_n, tile_m, width, dtype)


def syr2k_tiled(n, k, alpha, beta, ch_a, ch_bt, ch_b, ch_at, ch_c, ch_out,
                tile_n, tile_m, width=1, dtype=np.float32):
    """SYR2K C' = alpha*(A*B^T + B*A^T) + beta*C.

    Per k-step the kernel consumes strip columns of A and B and strip rows
    of B^T and A^T, accumulating both outer products into the same on-chip
    tile — one pass over the data instead of two chained GEMMs.
    """
    _check(n, tile_n, n, tile_m)
    alpha = dtype(alpha)
    beta = dtype(beta)
    for ti in range(n // tile_n):
        for tj in range(n // tile_m):
            ctile = yield from _pop_block(ch_c, tile_n * tile_m, width)
            acc = [[dtype(0)] * tile_m for _ in range(tile_n)]
            for kk in range(k):
                a_col = yield from _pop_block(ch_a, tile_n, width)
                bt_row = yield from _pop_block(ch_bt, tile_m, width)
                b_col = yield from _pop_block(ch_b, tile_n, width)
                at_row = yield from _pop_block(ch_at, tile_m, width)
                for r in range(tile_n):
                    ar = dtype(a_col[r])
                    br = dtype(b_col[r])
                    row = acc[r]
                    done = 0
                    while done < tile_m:
                        c = min(width, tile_m - done)
                        for j in range(done, done + c):
                            row[j] = (row[j] + ar * dtype(bt_row[j])
                                      + br * dtype(at_row[j]))
                        yield Clock()
                        done += c
            out = []
            for r in range(tile_n):
                for j in range(tile_m):
                    out.append(alpha * acc[r][j]
                               + beta * dtype(ctile[r * tile_m + j]))
            yield from _push_block(ch_out, out, width)


def trsm_tiled(n, m, alpha, ch_a, ch_b, ch_out, width=1,
               dtype=np.float32, lower=True, unit_diag=False):
    """TRSM: solve A X = alpha*B (left side, triangular A).

    A (N x N, generic storage, row-major) is streamed once and buffered on
    chip (N^2 elements of M20K — the FBLAS design point for moderate N);
    each of the M columns of B then streams through a TRSV-style solve.
    """
    if n < 1 or m < 1:
        raise ValueError("dimensions must be positive")
    alpha = dtype(alpha)
    a_flat = yield from _pop_block(ch_a, n * n, width)
    a = [[dtype(a_flat[i * n + j]) for j in range(n)] for i in range(n)]
    rows = list(range(n)) if lower else list(range(n - 1, -1, -1))
    for col in range(m):
        b = yield from _pop_block(ch_b, n, width)
        x = [dtype(0)] * n
        for i in rows:
            js = range(i) if lower else range(i + 1, n)
            acc = dtype(0)
            for j in js:
                acc = acc + a[i][j] * x[j]
            xi = alpha * dtype(b[i]) - acc
            if not unit_diag:
                xi = xi / a[i][i]
            x[i] = xi
        yield from _push_block(ch_out, x, width)


# ---------------------------------------------------------------------------
# Fully-unrolled tiny-matrix designs (Table V)
# ---------------------------------------------------------------------------

def gemm_unrolled(size, nbatch, alpha, beta, ch_in, ch_out,
                  dtype=np.float32):
    """Fully-unrolled GEMM of fixed ``size``: one problem per clock.

    ``ch_in`` delivers, per problem, A then B then C flattened row-major
    (3*size^2 values in one cycle); ``ch_out`` receives the size^2 result.
    The circuit is the routine body completely unrolled (Sec. III-A):
    every multiply-add exists in silicon, so a new problem starts every
    cycle at the cost of 2*size^3 DSP-equivalents.
    """
    if size < 1 or nbatch < 1:
        raise ValueError("size and nbatch must be positive")
    s2 = size * size
    for _ in range(nbatch):
        vals = yield Pop(ch_in, 3 * s2)
        a = np.array(vals[:s2], dtype=dtype).reshape(size, size)
        b = np.array(vals[s2:2 * s2], dtype=dtype).reshape(size, size)
        c = np.array(vals[2 * s2:], dtype=dtype).reshape(size, size)
        r = reference.gemm(alpha, a, b, beta, c)
        yield Push(ch_out, tuple(r.reshape(-1)), None)
        yield Clock()


def trsm_unrolled(size, nbatch, alpha, ch_in, ch_out,
                  dtype=np.float32, lower=True, unit_diag=False):
    """Fully-unrolled TRSM of fixed ``size``: one problem per clock.

    ``ch_in`` delivers A then B flattened (2*size^2 values); ``ch_out``
    receives the size^2 solution X of A X = alpha*B.
    """
    if size < 1 or nbatch < 1:
        raise ValueError("size and nbatch must be positive")
    s2 = size * size
    for _ in range(nbatch):
        vals = yield Pop(ch_in, 2 * s2)
        a = np.array(vals[:s2], dtype=dtype).reshape(size, size)
        b = np.array(vals[s2:], dtype=dtype).reshape(size, size)
        r = reference.trsm(alpha, a, b, lower=lower, unit_diag=unit_diag)
        yield Push(ch_out, tuple(np.asarray(r, dtype=dtype).reshape(-1)), None)
        yield Clock()


def _check(n, tile_n, m, tile_m):
    if n < 1 or m < 1:
        raise ValueError("dimensions must be positive")
    if n % tile_n or m % tile_m:
        raise ValueError(
            f"matrix {n}x{m} not divisible into {tile_n}x{tile_m} tiles")
