"""Streaming Level-1 kernels.

Each function is a generator implementing one BLAS Level-1 routine against
the simulator's channel protocol (:mod:`repro.fpga.kernel`), mirroring the
structure of the paper's HLS listings: an outer loop strip-mined by the
vectorization width W, whose body pops W operands per stream, computes the
unrolled inner loop, and pushes the results — one loop iteration per clock
cycle (II = 1).

Conventions: ``n`` is the vector length; widths need not divide ``n`` (the
tail iteration is narrower); ``dtype`` selects single (np.float32) or
double (np.float64) precision, with arithmetic performed in that dtype so
rounding matches a hardware implementation of the same precision.
"""

from __future__ import annotations

import numpy as np

from ..fpga.kernel import Clock, Pop, Push
from . import reference


def _chunk(vals, count):
    """Normalize a Pop result (scalar when count==1) to a list."""
    return [vals] if count == 1 else vals


def scal_kernel(n, alpha, ch_x, ch_out, width=1, dtype=np.float32):
    """SCAL: stream x, push alpha*x (Fig. 4 of the paper)."""
    alpha = dtype(alpha)
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        yield Push(ch_out, tuple(alpha * dtype(x) for x in xs), None)
        yield Clock()
        done += c


def copy_kernel(n, ch_x, ch_out, width=1, dtype=np.float32):
    """COPY: forward the stream unchanged."""
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        yield Push(ch_out, tuple(dtype(x) for x in xs), None)
        yield Clock()
        done += c


def axpy_kernel(n, alpha, ch_x, ch_y, ch_out, width=1, dtype=np.float32):
    """AXPY: push alpha*x + y."""
    alpha = dtype(alpha)
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        ys = _chunk((yield Pop(ch_y, c)), c)
        yield Push(ch_out, tuple(alpha * dtype(x) + dtype(y)
                                 for x, y in zip(xs, ys)), None)
        yield Clock()
        done += c


def swap_kernel(n, ch_x, ch_y, ch_out_x, ch_out_y, width=1, dtype=np.float32):
    """SWAP: route x to the y output and vice versa."""
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        ys = _chunk((yield Pop(ch_y, c)), c)
        yield Push(ch_out_x, tuple(dtype(y) for y in ys), None)
        yield Push(ch_out_y, tuple(dtype(x) for x in xs), None)
        yield Clock()
        done += c


def rot_kernel(n, c_rot, s_rot, ch_x, ch_y, ch_out_x, ch_out_y,
               width=1, dtype=np.float32):
    """ROT: apply the plane rotation (c, s) elementwise."""
    c_rot = dtype(c_rot)
    s_rot = dtype(s_rot)
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        ys = _chunk((yield Pop(ch_y, c)), c)
        yield Push(ch_out_x, tuple(c_rot * dtype(x) + s_rot * dtype(y)
                                   for x, y in zip(xs, ys)), None)
        yield Push(ch_out_y, tuple(c_rot * dtype(y) - s_rot * dtype(x)
                                   for x, y in zip(xs, ys)), None)
        yield Clock()
        done += c


def rotm_kernel(n, param, ch_x, ch_y, ch_out_x, ch_out_y,
                width=1, dtype=np.float32):
    """ROTM: apply the modified rotation given by ``param`` elementwise."""
    flag = float(param[0])
    h11, h21, h12, h22 = (dtype(p) for p in param[1:5])
    one, mone = dtype(1), dtype(-1)
    if flag == -2.0:
        h11, h12, h21, h22 = one, dtype(0), dtype(0), one
    elif flag == 0.0:
        h11, h22 = one, one
    elif flag == 1.0:
        h12, h21 = one, mone
    elif flag != -1.0:
        raise ValueError(f"invalid rotm flag {flag}")
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        ys = _chunk((yield Pop(ch_y, c)), c)
        yield Push(ch_out_x, tuple(h11 * dtype(x) + h12 * dtype(y)
                                   for x, y in zip(xs, ys)), None)
        yield Push(ch_out_y, tuple(h21 * dtype(x) + h22 * dtype(y)
                                   for x, y in zip(xs, ys)), None)
        yield Clock()
        done += c


def dot_kernel(n, ch_x, ch_y, ch_res, width=1, dtype=np.float32, ii=1):
    """DOT: accumulate x^T y, push the single result (Fig. 5).

    The W-wide inner loop reduces through a binary tree; we reproduce the
    tree's summation order so single-precision rounding matches the
    hardware circuit rather than a sequential accumulation.

    ``ii`` is the loop initiation interval.  FBLAS applies the
    pipeline-enabling transformations of Sec. III-A (iteration-space
    transposition, accumulation interleaving) so its modules achieve
    ii=1 even in double precision, where the loop-carried accumulation
    would otherwise force the scheduler to ii > 1; passing ii > 1 models
    the *untransformed* loop for the ablation benchmark.
    """
    if ii < 1:
        raise ValueError("initiation interval must be >= 1")
    res = dtype(0)
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        ys = _chunk((yield Pop(ch_y, c)), c)
        res = res + _tree_reduce(
            [dtype(x) * dtype(y) for x, y in zip(xs, ys)], dtype)
        yield Clock(ii)
        done += c
    yield Push(ch_res, (res,), None)
    yield Clock()


def sdsdot_kernel(n, sb, ch_x, ch_y, ch_res, width=1):
    """SDSDOT: single-precision inputs, double-precision accumulation."""
    res = np.float64(sb)
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        ys = _chunk((yield Pop(ch_y, c)), c)
        res = res + _tree_reduce(
            [np.float64(x) * np.float64(y) for x, y in zip(xs, ys)],
            np.float64)
        yield Clock()
        done += c
    yield Push(ch_res, (np.float32(res),), None)
    yield Clock()


def nrm2_kernel(n, ch_x, ch_res, width=1, dtype=np.float32):
    """NRM2: sqrt of the sum of squares."""
    acc = dtype(0)
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        acc = acc + _tree_reduce([dtype(x) * dtype(x) for x in xs], dtype)
        yield Clock()
        done += c
    yield Push(ch_res, (dtype(np.sqrt(acc)),), None)
    yield Clock()


def asum_kernel(n, ch_x, ch_res, width=1, dtype=np.float32):
    """ASUM: sum of absolute values."""
    acc = dtype(0)
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        acc = acc + _tree_reduce([dtype(abs(dtype(x))) for x in xs], dtype)
        yield Clock()
        done += c
    yield Push(ch_res, (acc,), None)
    yield Clock()


def iamax_kernel(n, ch_x, ch_res, width=1, dtype=np.float32):
    """IAMAX: index of the first element of maximal magnitude."""
    best = dtype(-1)
    best_idx = 0
    done = 0
    while done < n:
        c = min(width, n - done)
        xs = _chunk((yield Pop(ch_x, c)), c)
        for lane, x in enumerate(xs):
            mag = abs(dtype(x))
            if mag > best:
                best = mag
                best_idx = done + lane
        yield Clock()
        done += c
    yield Push(ch_res, (best_idx,), None)
    yield Clock()


def rotg_kernel(ch_ab, ch_out, dtype=np.float32):
    """ROTG: pop (a, b), push (r, z, c, s)."""
    ab = yield Pop(ch_ab, 2)
    r, z, c, s = reference.rotg(ab[0], ab[1], dtype=dtype)
    yield Push(ch_out, (dtype(r), dtype(z), dtype(c), dtype(s)), None)
    yield Clock()


def rotmg_kernel(ch_in, ch_out, dtype=np.float32):
    """ROTMG: pop (d1, d2, x1, y1), push (d1', d2', x1', param[0:5])."""
    vals = yield Pop(ch_in, 4)
    d1, d2, x1, param = reference.rotmg(*vals, dtype=dtype)
    yield Push(ch_out, (dtype(d1), dtype(d2), dtype(x1)) +
               tuple(dtype(p) for p in param), None)
    yield Clock()


def _tree_reduce(values, dtype):
    """Sum a list the way the unrolled adder tree does (pairwise)."""
    if not values:
        return dtype(0)
    level = list(values)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(level[i] + level[i + 1])
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
