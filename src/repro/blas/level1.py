"""Streaming Level-1 kernels.

Each function builds a generator implementing one BLAS Level-1 routine
against the simulator's channel protocol (:mod:`repro.fpga.kernel`),
mirroring the structure of the paper's HLS listings: an outer loop
strip-mined by the vectorization width W, whose body pops W operands per
stream, computes the unrolled inner loop, and pushes the results — one
loop iteration per clock cycle (II = 1).

Every loop kernel carries a :class:`~repro.fpga.pattern.StaticPattern`:
the generator and the pattern's vectorized ``block()`` share one cursor
(and, for reductions, one accumulator), so the bulk engine can replay K
full-width iterations arithmetically with bit-identical rounding — the
block executors use only elementwise array ops, the same pairwise adder
tree (:func:`_tree_reduce_rows`), and strictly sequential accumulation
(``np.add.accumulate``) to reproduce the scalar loop's summation order.

Conventions: ``n`` is the vector length; widths need not divide ``n`` (the
tail iteration is narrower); ``dtype`` selects single (np.float32) or
double (np.float64) precision, with arithmetic performed in that dtype so
rounding matches a hardware implementation of the same precision.
"""

from __future__ import annotations

import numpy as np

from ..fpga.kernel import Clock, Pop, Push
from ..fpga.pattern import PatternedGenerator, StaticPattern
from . import reference


def _chunk(vals, count):
    """Normalize a Pop result (scalar when count==1) to a list."""
    return [vals] if count == 1 else vals


class _Cursor:
    """Shared loop cursor: the generator advances it *before* its
    end-of-iteration ``Clock`` (no op is emitted in between, so the op
    sequence is unchanged) and the pattern's ``block()`` advances it by
    ``k`` iterations — both always agree at cycle boundaries."""

    __slots__ = ("done",)

    def __init__(self):
        self.done = 0


def _steady_map(n, width, ins, outs, emit, block, dtype):
    """Patterned elementwise kernel: pop W per input, emit W per output.

    ``emit(rows)`` computes one iteration's output tuples from lists of
    scalars (the original listing's body, verbatim); ``block(k, arrs)``
    is its vectorized equivalent over ``(k*width,)`` arrays.
    """
    st = _Cursor()

    def gen():
        while st.done < n:
            c = min(width, n - st.done)
            rows = []
            for ch in ins:
                rows.append(_chunk((yield Pop(ch, c)), c))
            for ch, vals in zip(outs, emit(rows)):
                yield Push(ch, vals, None)
            st.done += c
            yield Clock()

    def ready():
        return (n - st.done) // width

    def blk(k, arrs):
        st.done += k * width
        return block(k, arrs)

    pat = StaticPattern(
        reads=tuple((ch, width) for ch in ins),
        writes=tuple((ch, width, None) for ch in outs),
        ii=1, dtype=dtype, ready=ready, block=blk,
        read_totals=(n,) * len(ins), write_totals=(n,) * len(outs))
    return PatternedGenerator(gen(), pat)


def _steady_reduce(n, width, ins, ch_res, fold, block, finalize,
                   ii, dtype):
    """Patterned reduction kernel: accumulate over the stream, push the
    result in an (event-stepped) epilogue.

    ``fold(rows, base)`` folds one iteration starting at element index
    ``base``; ``block(k, arrs, base)`` folds ``k`` full-width iterations.
    """
    st = _Cursor()

    def gen():
        if ii < 1:
            raise ValueError("initiation interval must be >= 1")
        while st.done < n:
            c = min(width, n - st.done)
            rows = []
            for ch in ins:
                rows.append(_chunk((yield Pop(ch, c)), c))
            fold(rows, st.done)
            st.done += c
            yield Clock(ii)
        yield Push(ch_res, finalize(), None)
        yield Clock()

    def ready():
        return (n - st.done) // width

    def blk(k, arrs):
        block(k, arrs, st.done)
        st.done += k * width
        return []

    pat = StaticPattern(
        reads=tuple((ch, width) for ch in ins),
        ii=ii, dtype=dtype, ready=ready, block=blk,
        read_totals=(n,) * len(ins))
    return PatternedGenerator(gen(), pat)


def scal_kernel(n, alpha, ch_x, ch_out, width=1, dtype=np.float32):
    """SCAL: stream x, push alpha*x (Fig. 4 of the paper)."""
    alpha = dtype(alpha)

    def emit(rows):
        xs, = rows
        return (tuple(alpha * dtype(x) for x in xs),)

    def block(k, arrs):
        return [alpha * arrs[0]]

    return _steady_map(n, width, (ch_x,), (ch_out,), emit, block, dtype)


def copy_kernel(n, ch_x, ch_out, width=1, dtype=np.float32):
    """COPY: forward the stream unchanged."""

    def emit(rows):
        xs, = rows
        return (tuple(dtype(x) for x in xs),)

    def block(k, arrs):
        return [arrs[0]]

    return _steady_map(n, width, (ch_x,), (ch_out,), emit, block, dtype)


def axpy_kernel(n, alpha, ch_x, ch_y, ch_out, width=1, dtype=np.float32):
    """AXPY: push alpha*x + y."""
    alpha = dtype(alpha)

    def emit(rows):
        xs, ys = rows
        return (tuple(alpha * dtype(x) + dtype(y)
                      for x, y in zip(xs, ys)),)

    def block(k, arrs):
        xa, ya = arrs
        return [alpha * xa + ya]

    return _steady_map(n, width, (ch_x, ch_y), (ch_out,), emit, block, dtype)


def swap_kernel(n, ch_x, ch_y, ch_out_x, ch_out_y, width=1, dtype=np.float32):
    """SWAP: route x to the y output and vice versa."""

    def emit(rows):
        xs, ys = rows
        return (tuple(dtype(y) for y in ys),
                tuple(dtype(x) for x in xs))

    def block(k, arrs):
        xa, ya = arrs
        return [ya, xa]

    return _steady_map(n, width, (ch_x, ch_y), (ch_out_x, ch_out_y),
                       emit, block, dtype)


def rot_kernel(n, c_rot, s_rot, ch_x, ch_y, ch_out_x, ch_out_y,
               width=1, dtype=np.float32):
    """ROT: apply the plane rotation (c, s) elementwise."""
    c_rot = dtype(c_rot)
    s_rot = dtype(s_rot)

    def emit(rows):
        xs, ys = rows
        return (tuple(c_rot * dtype(x) + s_rot * dtype(y)
                      for x, y in zip(xs, ys)),
                tuple(c_rot * dtype(y) - s_rot * dtype(x)
                      for x, y in zip(xs, ys)))

    def block(k, arrs):
        xa, ya = arrs
        return [c_rot * xa + s_rot * ya, c_rot * ya - s_rot * xa]

    return _steady_map(n, width, (ch_x, ch_y), (ch_out_x, ch_out_y),
                       emit, block, dtype)


def rotm_kernel(n, param, ch_x, ch_y, ch_out_x, ch_out_y,
                width=1, dtype=np.float32):
    """ROTM: apply the modified rotation given by ``param`` elementwise."""
    flag = float(param[0])
    h11, h21, h12, h22 = (dtype(p) for p in param[1:5])
    one, mone = dtype(1), dtype(-1)
    if flag == -2.0:
        h11, h12, h21, h22 = one, dtype(0), dtype(0), one
    elif flag == 0.0:
        h11, h22 = one, one
    elif flag == 1.0:
        h12, h21 = one, mone
    elif flag != -1.0:
        raise ValueError(f"invalid rotm flag {flag}")

    def emit(rows):
        xs, ys = rows
        return (tuple(h11 * dtype(x) + h12 * dtype(y)
                      for x, y in zip(xs, ys)),
                tuple(h21 * dtype(x) + h22 * dtype(y)
                      for x, y in zip(xs, ys)))

    def block(k, arrs):
        xa, ya = arrs
        return [h11 * xa + h12 * ya, h21 * xa + h22 * ya]

    return _steady_map(n, width, (ch_x, ch_y), (ch_out_x, ch_out_y),
                       emit, block, dtype)


def dot_kernel(n, ch_x, ch_y, ch_res, width=1, dtype=np.float32, ii=1):
    """DOT: accumulate x^T y, push the single result (Fig. 5).

    The W-wide inner loop reduces through a binary tree; we reproduce the
    tree's summation order so single-precision rounding matches the
    hardware circuit rather than a sequential accumulation.

    ``ii`` is the loop initiation interval.  FBLAS applies the
    pipeline-enabling transformations of Sec. III-A (iteration-space
    transposition, accumulation interleaving) so its modules achieve
    ii=1 even in double precision, where the loop-carried accumulation
    would otherwise force the scheduler to ii > 1; passing ii > 1 models
    the *untransformed* loop for the ablation benchmark.
    """
    acc = [dtype(0)]

    def fold(rows, _base):
        xs, ys = rows
        acc[0] = acc[0] + _tree_reduce(
            [dtype(x) * dtype(y) for x, y in zip(xs, ys)], dtype)

    def block(k, arrs, _base):
        xa, ya = arrs
        rows = _tree_reduce_rows((xa * ya).reshape(k, width))
        acc[0] = _fold_rows(acc[0], rows)

    def finalize():
        return (acc[0],)

    return _steady_reduce(n, width, (ch_x, ch_y), ch_res, fold, block,
                          finalize, ii, dtype)


def sdsdot_kernel(n, sb, ch_x, ch_y, ch_res, width=1):
    """SDSDOT: single-precision inputs, double-precision accumulation."""
    acc = [np.float64(sb)]

    def fold(rows, _base):
        xs, ys = rows
        acc[0] = acc[0] + _tree_reduce(
            [np.float64(x) * np.float64(y) for x, y in zip(xs, ys)],
            np.float64)

    def block(k, arrs, _base):
        xa, ya = arrs
        rows = _tree_reduce_rows((xa * ya).reshape(k, width))
        acc[0] = _fold_rows(acc[0], rows)

    def finalize():
        return (np.float32(acc[0]),)

    return _steady_reduce(n, width, (ch_x, ch_y), ch_res, fold, block,
                          finalize, 1, np.float64)


def nrm2_kernel(n, ch_x, ch_res, width=1, dtype=np.float32):
    """NRM2: sqrt of the sum of squares."""
    acc = [dtype(0)]

    def fold(rows, _base):
        xs, = rows
        acc[0] = acc[0] + _tree_reduce(
            [dtype(x) * dtype(x) for x in xs], dtype)

    def block(k, arrs, _base):
        xa = arrs[0]
        rows = _tree_reduce_rows((xa * xa).reshape(k, width))
        acc[0] = _fold_rows(acc[0], rows)

    def finalize():
        return (dtype(np.sqrt(acc[0])),)

    return _steady_reduce(n, width, (ch_x,), ch_res, fold, block,
                          finalize, 1, dtype)


def asum_kernel(n, ch_x, ch_res, width=1, dtype=np.float32):
    """ASUM: sum of absolute values."""
    acc = [dtype(0)]

    def fold(rows, _base):
        xs, = rows
        acc[0] = acc[0] + _tree_reduce(
            [dtype(abs(dtype(x))) for x in xs], dtype)

    def block(k, arrs, _base):
        rows = _tree_reduce_rows(np.abs(arrs[0]).reshape(k, width))
        acc[0] = _fold_rows(acc[0], rows)

    def finalize():
        return (acc[0],)

    return _steady_reduce(n, width, (ch_x,), ch_res, fold, block,
                          finalize, 1, dtype)


def iamax_kernel(n, ch_x, ch_res, width=1, dtype=np.float32):
    """IAMAX: index of the first element of maximal magnitude."""
    best = [dtype(-1), 0]             # [magnitude, flat index]

    def fold(rows, base):
        xs, = rows
        for lane, x in enumerate(xs):
            mag = abs(dtype(x))
            if mag > best[0]:
                best[0] = mag
                best[1] = base + lane

    def block(k, arrs, base):
        # The scalar scan keeps the *first* strictly-greater magnitude;
        # over a block that is the first occurrence of the block maximum,
        # provided it beats the running best — exactly argmax semantics.
        mags = np.abs(arrs[0])
        m = mags.max()
        if m > best[0]:
            idx = int(np.argmax(mags))
            best[0] = mags[idx]
            best[1] = base + idx

    def finalize():
        return (best[1],)

    return _steady_reduce(n, width, (ch_x,), ch_res, fold, block,
                          finalize, 1, dtype)


def batched_dot_kernel(b, n, ch_x, ch_y, ch_res, width=1, dtype=np.float32):
    """Batched DOT: ``b`` independent length-``n`` dot products streamed
    back to back over one pipeline (Table V batched-operation territory).

    Each segment accumulates exactly like :func:`dot_kernel` — fresh
    accumulator, pairwise adder tree per burst, strictly sequential fold
    across bursts — so every result is bit-identical to ``b`` separate
    single-problem runs.  All ``b`` results are pushed in one
    event-stepped epilogue, which keeps the entire ``b*n``-element read
    phase a single regular patterned region: when ``width`` divides
    ``n``, ``block()`` replays bursts spanning segment boundaries by
    folding each segment's contiguous run of burst sums separately;
    otherwise bursts stop at segment boundaries so tails stay scalar.
    """
    if b < 1 or n < 1:
        raise ValueError("batched dot needs b >= 1 and n >= 1")
    total = b * n
    accs = [dtype(0)] * b
    st = _Cursor()

    def gen():
        while st.done < total:
            seg = st.done // n
            c = min(width, (seg + 1) * n - st.done)
            xs = _chunk((yield Pop(ch_x, c)), c)
            ys = _chunk((yield Pop(ch_y, c)), c)
            accs[seg] = accs[seg] + _tree_reduce(
                [dtype(x) * dtype(y) for x, y in zip(xs, ys)], dtype)
            st.done += c
            yield Clock()
        for seg in range(b):
            yield Push(ch_res, (accs[seg],), None)
            yield Clock()

    def ready():
        if n % width == 0:
            return (total - st.done) // width
        seg_end = (st.done // n + 1) * n
        return (seg_end - st.done) // width

    def blk(k, arrs):
        xa, ya = arrs
        rows = _tree_reduce_rows((xa * ya).reshape(k, width))
        pos, i = st.done, 0
        while i < k:
            seg = pos // n
            take = min(k - i, ((seg + 1) * n - pos) // width)
            accs[seg] = _fold_rows(accs[seg], rows[i:i + take])
            i += take
            pos += take * width
        st.done = pos
        return []

    pat = StaticPattern(
        reads=((ch_x, width), (ch_y, width)),
        ii=1, dtype=dtype, ready=ready, block=blk,
        read_totals=(total, total))
    return PatternedGenerator(gen(), pat)


def batched_axpy_kernel(b, n, alphas, ch_x, ch_y, ch_out,
                        width=1, dtype=np.float32):
    """Batched AXPY: ``b`` independent ``alpha_i * x_i + y_i`` updates
    streamed back to back over one pipeline.

    ``alphas`` holds one scalar per segment.  The vectorized ``block()``
    multiplies by a per-element alpha array (each segment's scalar
    repeated ``n`` times) — elementwise, that is the same IEEE operation
    as the scalar listing's ``alpha * x``, so results stay bit-identical
    to ``b`` separate :func:`axpy_kernel` runs.  Bursts never straddle a
    segment inside the generator (``c`` stops at the boundary); the
    pattern spans segments only when ``width`` divides ``n``, where
    boundaries coincide with burst edges.
    """
    if len(alphas) != b:
        raise ValueError(f"need {b} alphas, got {len(alphas)}")
    total = b * n
    alpha_seg = np.asarray([dtype(a) for a in alphas], dtype=dtype)
    alpha_elem = np.repeat(alpha_seg, n)
    st = _Cursor()

    def gen():
        while st.done < total:
            seg = st.done // n
            c = min(width, (seg + 1) * n - st.done)
            a = alpha_seg[seg]
            xs = _chunk((yield Pop(ch_x, c)), c)
            ys = _chunk((yield Pop(ch_y, c)), c)
            yield Push(ch_out, tuple(a * dtype(x) + dtype(y)
                                     for x, y in zip(xs, ys)), None)
            st.done += c
            yield Clock()

    def ready():
        if n % width == 0:
            return (total - st.done) // width
        seg_end = (st.done // n + 1) * n
        return (seg_end - st.done) // width

    def blk(k, arrs):
        xa, ya = arrs
        base = st.done
        st.done += k * width
        return [alpha_elem[base:base + k * width] * xa + ya]

    pat = StaticPattern(
        reads=((ch_x, width), (ch_y, width)),
        writes=((ch_out, width, None),),
        ii=1, dtype=dtype, ready=ready, block=blk,
        read_totals=(total, total), write_totals=(total,))
    return PatternedGenerator(gen(), pat)


def rotg_kernel(ch_ab, ch_out, dtype=np.float32):
    """ROTG: pop (a, b), push (r, z, c, s)."""
    ab = yield Pop(ch_ab, 2)
    r, z, c, s = reference.rotg(ab[0], ab[1], dtype=dtype)
    yield Push(ch_out, (dtype(r), dtype(z), dtype(c), dtype(s)), None)
    yield Clock()


def rotmg_kernel(ch_in, ch_out, dtype=np.float32):
    """ROTMG: pop (d1, d2, x1, y1), push (d1', d2', x1', param[0:5])."""
    vals = yield Pop(ch_in, 4)
    d1, d2, x1, param = reference.rotmg(*vals, dtype=dtype)
    yield Push(ch_out, (dtype(d1), dtype(d2), dtype(x1)) +
               tuple(dtype(p) for p in param), None)
    yield Clock()


def _tree_reduce(values, dtype):
    """Sum a list the way the unrolled adder tree does (pairwise)."""
    if not values:
        return dtype(0)
    level = list(values)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(level[i] + level[i + 1])
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _tree_reduce_rows(mat):
    """Row-wise :func:`_tree_reduce` over a ``(k, w)`` matrix.

    Operates on whole columns so the ``k`` per-iteration reductions share
    each adder-tree level as one vectorized add, with the same pairing —
    hence the same rounding — as the scalar tree.
    """
    cols = [mat[:, j] for j in range(mat.shape[1])]
    while len(cols) > 1:
        nxt = []
        for i in range(0, len(cols) - 1, 2):
            nxt.append(cols[i] + cols[i + 1])
        if len(cols) % 2:
            nxt.append(cols[-1])
        cols = nxt
    return cols[0]


def _fold_rows(acc, rows):
    """Left-fold ``rows`` into ``acc`` exactly as sequential scalar adds.

    ``np.add.accumulate`` is defined elementwise-sequentially (each
    output is the previous output plus the next input), unlike
    ``np.sum``/``np.add.reduce`` which use pairwise summation — so this
    matches ``k`` per-iteration ``acc = acc + row`` updates bit-exactly.
    """
    seq = np.add.accumulate(np.concatenate((np.asarray([acc]), rows)))
    return seq[-1]
