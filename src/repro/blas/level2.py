"""Streaming Level-2 kernels.

Level-2 routines are the interesting case for tiling (Sec. III-B): the
matrix is streamed in 2D tiles and the *same* routine admits multiple
streaming implementations with different I/O complexities:

* :func:`gemv_row_tiles` — A in tiles by rows; y is reused on chip, x must
  be **replayed** ceil(N/T_N) times (Fig. 2, left);
* :func:`gemv_col_tiles` — A in tiles by columns; x is reused, y partial
  results are **replayed** (written out and re-read) ceil(M/T_M) times
  (Fig. 2, right);
* :func:`gemv_nontiled` — Listing 1 of the paper: no reuse at all, x is
  replayed for every row.

All kernels expect the matrix stream in the order produced by the matching
:class:`repro.streaming.tiling.MatrixSchedule` with row-major elements.

The tiled loop nests are mostly not statically regular cycle by cycle
(block loads, per-tile epilogues, loop-carried solves), so modules here
carry a *declare-only* :class:`~repro.fpga.pattern.StaticPattern` via
:func:`_declared`: the steady ports, rates and reordering windows
(``defer``) are documented for analysis and the bulk engine, but
``ready()`` is pinned to 0 and the fast path always falls back to exact
event stepping for these kernels.  The exception is
:func:`gemv_row_tiles`: when the tile width divides the vectorization
width evenly its matrix phase *is* regular — one W-wide burst of A per
cycle for T_N*T_M/W cycles — so it carries an executable pattern over
the A port alone and the bulk/certified engines fast-forward whole
tiles, dropping to event stepping only for the x/y block loads and the
per-row-of-tiles output epilogue.
"""

from __future__ import annotations

import functools
import inspect

import numpy as np

from ..fpga.kernel import Clock, Pop, Push
from ..fpga.pattern import PatternedGenerator, StaticPattern
from .level1 import _chunk, _tree_reduce, _tree_reduce_rows


def _declared(reads=(), writes=(), defer=None):
    """Attach a declare-only port pattern to a level-2 module generator.

    ``reads``/``writes`` name the decorated function's channel
    parameters; lane counts come from its bound ``width`` argument, so
    the derivation is automatic for every call signature.  ``defer``
    optionally maps the bound arguments to the kernel's reordering
    window (elements consumed before the first push) for the FB403
    minimal-depth inference.
    """
    def deco(fn):
        sig = inspect.signature(fn)

        @functools.wraps(fn)
        def build(*args, **kwargs):
            bound = sig.bind(*args, **kwargs)
            bound.apply_defaults()
            arg = bound.arguments
            w = arg.get("width", 1)
            pat = StaticPattern.declare(
                reads=tuple((arg[name], w) for name in reads),
                writes=tuple((arg[name], w, None) for name in writes),
                defer=defer(arg) if defer is not None else 0)
            return PatternedGenerator(fn(*args, **kwargs), pat)
        return build
    return deco


def _pop_block(ch, count, width):
    """Pop ``count`` elements in W-wide cycles; return them as a list.

    This is a sub-generator used via ``yield from``; each W-chunk costs one
    cycle, matching an interface that delivers W elements per clock.
    """
    out = []
    done = 0
    while done < count:
        c = min(width, count - done)
        vals = _chunk((yield Pop(ch, c)), c)
        out.extend(vals)
        yield Clock()
        done += c
    return out


def _push_block(ch, values, width):
    """Push a list of values in W-wide cycles (sub-generator)."""
    n = len(values)
    done = 0
    while done < n:
        c = min(width, n - done)
        yield Push(ch, tuple(values[done:done + c]), None)
        yield Clock()
        done += c


class _GemvCursor:
    """Shared loop state for the patterned row-tiles GEMV.

    The generator drives its matrix phase entirely off this cursor
    (updating it *before* each end-of-iteration ``Clock``), so the
    pattern's ``block()`` can fast-forward ``k`` A-bursts and the
    resumed generator continues seamlessly from the advanced state.
    """

    __slots__ = ("in_a", "r", "done", "row_acc", "acc", "xs")

    def __init__(self):
        self.in_a = False      # suspended inside a tile's matrix phase
        self.r = 0             # current row within the tile
        self.done = 0          # elements consumed in the current row
        self.row_acc = None    # partial sum of the current row
        self.acc = None        # (tile_n,) accumulators for the tile row
        self.xs = None         # current x block as an ndarray


def gemv_row_tiles(n, m, alpha, beta, ch_a, ch_x, ch_y, ch_out,
                   tile_n, tile_m, width=1, dtype=np.float32):
    """GEMV y = alpha*A*x + beta*y, A (N x M) in tiles by rows.

    Stream contract: ``ch_a`` carries A in T_N x T_M tiles by rows with
    row-major elements; ``ch_x`` carries x in T_M blocks, the whole vector
    replayed ceil(N/T_N) times; ``ch_y`` carries y once; ``ch_out``
    receives y' in T_N blocks.  A block of y is reused on chip across an
    entire row of tiles.

    When ``width`` divides ``tile_m`` the matrix phase is statically
    regular (one W-wide burst of A per cycle) and the attached pattern is
    *executable* over the A port: the bulk/certified engines replay whole
    tiles arithmetically with the same adder-tree and sequential
    accumulation rounding as the scalar loop.  The x/y loads and the
    output epilogue stay event-stepped.
    """
    _check_tiles(n, tile_n, m, tile_m)
    alpha = dtype(alpha)
    beta = dtype(beta)
    st = _GemvCursor()

    def gen():
        for ti in range(n // tile_n):
            ys = yield from _pop_block(ch_y, tile_n, width)
            st.acc = np.zeros(tile_n, dtype=dtype)
            for tj in range(m // tile_m):
                xs = yield from _pop_block(ch_x, tile_m, width)
                st.xs = np.asarray(xs, dtype=dtype)
                st.r = 0
                st.done = 0
                st.row_acc = dtype(0)
                st.in_a = True
                while st.in_a:
                    c = min(width, tile_m - st.done)
                    avals = _chunk((yield Pop(ch_a, c)), c)
                    st.row_acc = st.row_acc + _tree_reduce(
                        [dtype(a) * dtype(x)
                         for a, x in zip(avals, xs[st.done:st.done + c])],
                        dtype)
                    st.done += c
                    if st.done == tile_m:
                        st.acc[st.r] = st.acc[st.r] + st.row_acc
                        st.row_acc = dtype(0)
                        st.done = 0
                        st.r += 1
                        if st.r == tile_n:
                            st.in_a = False
                    yield Clock()
            result = [alpha * a + beta * dtype(y)
                      for a, y in zip(st.acc, ys)]
            yield from _push_block(ch_out, result, width)

    defer = m * tile_n                   # a full row of tiles of A
    if tile_m % width:
        # Ragged bursts inside a row: not statically regular; keep the
        # ports and reordering window visible to analysis only.
        pat = StaticPattern.declare(
            reads=((ch_a, width), (ch_x, width), (ch_y, width)),
            writes=((ch_out, width, None),),
            read_totals=(n * m, m * (n // tile_n), n),
            write_totals=(n,), defer=defer)
        return PatternedGenerator(gen(), pat)

    cpr = tile_m // width               # A-bursts per row

    def ready():
        if not st.in_a:
            return 0
        return (tile_n - st.r) * cpr - st.done // width

    def block(k, ins):
        xv = st.xs.reshape(cpr, width)
        start = st.r * cpr + st.done // width
        amat = np.asarray(ins[0]).reshape(k, width)
        sums = _tree_reduce_rows(amat * xv[(start + np.arange(k)) % cpr])
        idx = 0
        if st.done:
            # Finish the partially accumulated current row first.
            take = min(k, cpr - st.done // width)
            st.row_acc = np.add.accumulate(np.concatenate(
                (np.asarray([st.row_acc], dtype=dtype),
                 sums[:take])))[-1]
            st.done += take * width
            idx = take
            if st.done == tile_m:
                st.acc[st.r] = st.acc[st.r] + st.row_acc
                st.row_acc = dtype(0)
                st.done = 0
                st.r += 1
        full = (k - idx) // cpr
        if full:
            # Whole rows: sequential left-folds from an explicit zero,
            # vectorized across rows (np.add.accumulate is defined
            # elementwise-sequentially, matching the scalar adds).
            mat = np.concatenate(
                (np.zeros((full, 1), dtype=dtype),
                 sums[idx:idx + full * cpr].reshape(full, cpr)), axis=1)
            st.acc[st.r:st.r + full] = (
                st.acc[st.r:st.r + full]
                + np.add.accumulate(mat, axis=1)[:, -1])
            st.r += full
            idx += full * cpr
        if idx < k:
            # Leading bursts of the next (incomplete) row.
            st.row_acc = np.add.accumulate(np.concatenate(
                (np.asarray([st.row_acc], dtype=dtype),
                 sums[idx:])))[-1]
            st.done = (k - idx) * width
        if st.r == tile_n:
            st.in_a = False
        return []

    pat = StaticPattern(
        reads=((ch_a, width),), ii=1, dtype=dtype,
        ready=ready, block=block,
        read_totals=(n * m,), defer=defer)
    return PatternedGenerator(gen(), pat)


@_declared(reads=("ch_a", "ch_x", "ch_y"), writes=("ch_out",),
           defer=lambda a: a["m"] * a["tile_n"])
def gemv_row_tiles_colmajor(n, m, alpha, beta, ch_a, ch_x, ch_y, ch_out,
                            tile_n, tile_m, width=1, dtype=np.float32):
    """GEMV, tiles by rows, with *column-major* elements inside each tile.

    The fourth corner of the Sec. III-B mode matrix: tiles are visited by
    rows (y reused, x replayed — same I/O complexity as
    :func:`gemv_row_tiles`) but each tile streams column by column, the
    order a producer like a transposed GER would emit.  Within a tile the
    kernel applies one x element to a column of partial sums per burst,
    so the accumulator is W-banked over rows instead of reduced over
    columns.
    """
    _check_tiles(n, tile_n, m, tile_m)
    alpha = dtype(alpha)
    beta = dtype(beta)
    for ti in range(n // tile_n):
        ys = yield from _pop_block(ch_y, tile_n, width)
        acc = [dtype(0)] * tile_n
        for tj in range(m // tile_m):
            xs = yield from _pop_block(ch_x, tile_m, width)
            for c in range(tile_m):
                xc = dtype(xs[c])
                done = 0
                while done < tile_n:
                    cnt = min(width, tile_n - done)
                    avals = _chunk((yield Pop(ch_a, cnt)), cnt)
                    for i, a in enumerate(avals):
                        acc[done + i] = acc[done + i] + dtype(a) * xc
                    yield Clock()
                    done += cnt
        result = [alpha * a + beta * dtype(y) for a, y in zip(acc, ys)]
        yield from _push_block(ch_out, result, width)


@_declared(reads=("ch_a", "ch_x", "ch_y"), writes=("ch_out",),
           defer=lambda a: a["tile_n"] * a["tile_m"])
def gemv_col_tiles(n, m, alpha, beta, ch_a, ch_x, ch_y, ch_out,
                   tile_n, tile_m, width=1, dtype=np.float32):
    """GEMV with A (N x M) in tiles by columns (Fig. 2, right).

    A block of x is reused on chip across an entire column of tiles; the
    partial y results stream out after every column of tiles and are
    re-consumed on the next pass.  Stream contract: ``ch_a`` carries A in
    tiles by columns (row-major elements); ``ch_x`` carries x exactly once
    (M elements); ``ch_y`` must deliver the beta-scaled initial y on the
    first pass and the previous pass's partials afterwards — in isolation
    that replay goes through DRAM, in a composition through a feedback
    channel of depth >= N (see :func:`y_replay_router`).  ``ch_out``
    receives N elements per pass; only the final pass's values are the
    result (the router separates them).
    """
    _check_tiles(n, tile_n, m, tile_m)
    alpha = dtype(alpha)
    beta = dtype(beta)
    col_tiles_count = m // tile_m
    for tj in range(col_tiles_count):
        xs = yield from _pop_block(ch_x, tile_m, width)
        for ti in range(n // tile_n):
            ys = yield from _pop_block(ch_y, tile_n, width)
            out = []
            for r in range(tile_n):
                row_acc = dtype(0)
                done = 0
                while done < tile_m:
                    c = min(width, tile_m - done)
                    avals = _chunk((yield Pop(ch_a, c)), c)
                    row_acc = row_acc + _tree_reduce(
                        [dtype(a) * dtype(x)
                         for a, x in zip(avals, xs[done:done + c])], dtype)
                    yield Clock()
                    done += c
                base = beta * dtype(ys[r]) if tj == 0 else dtype(ys[r])
                out.append(base + alpha * row_acc)
            yield from _push_block(ch_out, out, width)


@_declared(reads=("ch_a", "ch_x", "ch_y"), writes=("ch_out",),
           defer=lambda a: a["m"] * a["tile_n"])
def gemv_row_tiles_db(n, m, alpha, beta, ch_a, ch_x, ch_y, ch_out,
                      tile_n, tile_m, width=1, dtype=np.float32):
    """GEMV, tiles by rows, with double-buffered x blocks.

    :func:`gemv_row_tiles` spends T_M/W dedicated cycles loading each x
    block before touching the tile.  Real FBLAS designs double-buffer: the
    next block streams in *during* the current tile's T_N*T_M/W compute
    cycles, so x fetches cost no extra time (Sec. IV-B: "new elements for
    x are required every T_N*T_M/W clock cycles").  Same stream contract
    as :func:`gemv_row_tiles`; only the cycle count differs, by the factor
    (1 + 1/T_N) the ablation benchmark measures.
    """
    _check_tiles(n, tile_n, m, tile_m)
    alpha = dtype(alpha)
    beta = dtype(beta)
    tiles_per_row = m // tile_m
    total_tiles = (n // tile_n) * tiles_per_row

    # Fill the first buffer up front (the only non-overlapped fetch).
    x_next = yield from _pop_block(ch_x, tile_m, width)
    tile_idx = 0
    for ti in range(n // tile_n):
        ys = yield from _pop_block(ch_y, tile_n, width)
        acc = [dtype(0)] * tile_n
        for tj in range(tiles_per_row):
            xs = x_next
            x_next = []
            prefetch_left = tile_m if tile_idx + 1 < total_tiles else 0
            for r in range(tile_n):
                row_acc = dtype(0)
                done = 0
                while done < tile_m:
                    c = min(width, tile_m - done)
                    avals = _chunk((yield Pop(ch_a, c)), c)
                    if prefetch_left > 0:
                        pc = min(width, prefetch_left)
                        pvals = _chunk((yield Pop(ch_x, pc)), pc)
                        x_next.extend(pvals)
                        prefetch_left -= pc
                    row_acc = row_acc + _tree_reduce(
                        [dtype(a) * dtype(x)
                         for a, x in zip(avals, xs[done:done + c])], dtype)
                    yield Clock()
                    done += c
                acc[r] = acc[r] + row_acc
            # Tail: tiny tiles may not offer enough compute cycles to hide
            # the whole fetch; finish it explicitly.
            while prefetch_left > 0:
                pc = min(width, prefetch_left)
                pvals = _chunk((yield Pop(ch_x, pc)), pc)
                x_next.extend(pvals)
                prefetch_left -= pc
                yield Clock()
            tile_idx += 1
        result = [alpha * a + beta * dtype(y) for a, y in zip(acc, ys)]
        yield from _push_block(ch_out, result, width)


@_declared(reads=("ch_from_gemv",), writes=("ch_feedback", "ch_final"))
def y_replay_router(n, passes, ch_from_gemv, ch_feedback, ch_final, width=1):
    """Route the col-tiles GEMV's per-pass partials.

    Passes 0..passes-2 loop back into ``ch_feedback`` (which must have
    depth >= N to hold a full intermediate y); the final pass goes to
    ``ch_final``.  In a real design this is either a DRAM round trip (the
    2NM/T_M I/O term) or an on-chip loop when N is known and small.
    """
    for p in range(passes):
        target = ch_final if p == passes - 1 else ch_feedback
        done = 0
        while done < n:
            c = min(width, n - done)
            vals = _chunk((yield Pop(ch_from_gemv, c)), c)
            yield Push(target, tuple(vals), None)
            yield Clock()
            done += c


@_declared(reads=("ch_a", "ch_x", "ch_y"), writes=("ch_out",),
           defer=lambda a: a["m"])
def gemv_nontiled(n, m, alpha, beta, ch_a, ch_x, ch_y, ch_out,
                  width=1, dtype=np.float32):
    """Non-tiled GEMV (Listing 1): x replayed for every row of A.

    Serves as the ablation baseline showing why tiling cuts the memory
    bandwidth requirement (Sec. IV-B): this version needs W elements of A
    *and* W elements of x per cycle.
    """
    if n < 1 or m < 1:
        raise ValueError("dimensions must be positive")
    alpha = dtype(alpha)
    beta = dtype(beta)
    for i in range(n):
        yv = yield Pop(ch_y, 1)
        acc = dtype(0)
        done = 0
        while done < m:
            c = min(width, m - done)
            avals = _chunk((yield Pop(ch_a, c)), c)
            xvals = _chunk((yield Pop(ch_x, c)), c)
            acc = acc + _tree_reduce(
                [dtype(a) * dtype(x) for a, x in zip(avals, xvals)], dtype)
            yield Clock()
            done += c
        yield Push(ch_out, (beta * dtype(yv) + alpha * acc,), None)
        yield Clock()


class _GemvTCursor:
    """Shared loop state for the patterned transposed GEMV.

    Like :class:`_GemvCursor`, the generator drives its matrix phase
    entirely off this cursor, so the pattern's ``block()`` can
    fast-forward ``k`` A-bursts and the resumed generator continues
    from the advanced state.
    """

    __slots__ = ("in_a", "tj", "r", "done", "xs", "s")

    def __init__(self):
        self.in_a = False      # suspended inside a row-of-tiles A phase
        self.tj = 0            # current tile column
        self.r = 0             # current row within the tile
        self.done = 0          # elements consumed in the current row
        self.xs = None         # current x block as an ndarray
        self.s = None          # (m,) on-chip accumulator


def gemv_transposed_row_tiles(n, m, alpha, beta, ch_a, ch_x, ch_y, ch_out,
                              tile_n, tile_m, width=1, dtype=np.float32):
    """GEMV^T s = alpha*A^T*x + beta*s, with A (N x M) in tiles by ROWS.

    This is the schedule trick that makes BICG stream A once (Sec. V-A):
    the transposed routine consumes the *same* physical stream of A as the
    non-transposed one, accumulating into an M-element on-chip buffer
    (costing M*sizeof(elem) bytes of M20K) instead of replaying its
    output.  ``ch_x`` carries the N-element input once, in T_N blocks;
    ``ch_y`` the M-element addend once; ``ch_out`` the M-element result.

    Like :func:`gemv_row_tiles`, when ``width`` divides ``tile_m`` the
    matrix phase is statically regular — one W-wide burst of A per cycle
    for a whole row of tiles — so the attached pattern is *executable*
    over the A port and the bulk/certified engines fast-forward whole
    rows of tiles with the scalar loop's exact accumulation order.
    """
    _check_tiles(n, tile_n, m, tile_m)
    alpha = dtype(alpha)
    beta = dtype(beta)
    st = _GemvTCursor()

    def gen():
        st.s = np.zeros(m, dtype=dtype)
        for ti in range(n // tile_n):
            xs = yield from _pop_block(ch_x, tile_n, width)
            st.xs = np.asarray(xs, dtype=dtype)
            st.tj = 0
            st.r = 0
            st.done = 0
            st.in_a = True
            while st.in_a:
                c = min(width, tile_m - st.done)
                avals = _chunk((yield Pop(ch_a, c)), c)
                xr = st.xs[st.r]
                col0 = st.tj * tile_m + st.done
                for k, a in enumerate(avals):
                    st.s[col0 + k] = st.s[col0 + k] + dtype(a) * xr
                st.done += c
                if st.done == tile_m:
                    st.done = 0
                    st.r += 1
                    if st.r == tile_n:
                        st.r = 0
                        st.tj += 1
                        if st.tj == m // tile_m:
                            st.in_a = False
                yield Clock()
        ys = yield from _pop_block(ch_y, m, width)
        result = [alpha * sv + beta * dtype(y) for sv, y in zip(st.s, ys)]
        yield from _push_block(ch_out, result, width)

    defer = n * m                        # the whole matrix before pushing
    if tile_m % width:
        pat = StaticPattern.declare(
            reads=((ch_a, width), (ch_x, width), (ch_y, width)),
            writes=((ch_out, width, None),),
            read_totals=(n * m, n, m), write_totals=(m,), defer=defer)
        return PatternedGenerator(gen(), pat)

    cpr = tile_m // width               # A-bursts per row segment
    bpt = tile_n * cpr                  # A-bursts per tile (one tj block)
    col_tiles = m // tile_m

    def ready():
        if not st.in_a:
            return 0
        return col_tiles * bpt - (st.tj * bpt + st.r * cpr
                                  + st.done // width)

    def _fold(bursts, tj, pos):
        # Sequential scalar-order fold of `bursts` starting at burst
        # `pos` within tile column `tj` (partial tiles only).
        for i in range(len(bursts)):
            r, b = divmod(pos + i, cpr)
            c0 = tj * tile_m + b * width
            st.s[c0:c0 + width] = st.s[c0:c0 + width] + bursts[i] * st.xs[r]

    def block(k, ins):
        amat = np.asarray(ins[0]).reshape(k, width)
        idx = 0
        pos = st.r * cpr + st.done // width
        if pos:
            # Finish the partially consumed current tile column first.
            take = min(k, bpt - pos)
            _fold(amat[:take], st.tj, pos)
            idx = take
            pos += take
            if pos == bpt:
                st.tj += 1
                pos = 0
        full = (k - idx) // bpt
        for _ in range(full):
            # Whole tile columns: each s segment receives its tile_n
            # contributions as a sequential left-fold over rows
            # (np.add.accumulate is defined elementwise-sequentially,
            # matching the scalar adds).
            seg = st.s[st.tj * tile_m:(st.tj + 1) * tile_m]
            contrib = (amat[idx:idx + bpt].reshape(tile_n, cpr, width)
                       * st.xs[:, None, None])
            seg[:] = np.add.accumulate(
                np.concatenate((seg.reshape(1, cpr, width), contrib),
                               axis=0), axis=0)[-1].reshape(-1)
            idx += bpt
            st.tj += 1
        if idx < k:
            # Leading bursts of the next (incomplete) tile column.
            _fold(amat[idx:], st.tj, 0)
            pos = k - idx
        st.r, db = divmod(pos, cpr)
        st.done = db * width
        if st.tj == col_tiles:
            st.in_a = False
        return []

    pat = StaticPattern(
        reads=((ch_a, width),), ii=1, dtype=dtype,
        ready=ready, block=block,
        read_totals=(n * m,), defer=defer)
    return PatternedGenerator(gen(), pat)


class _GerCursor:
    """Shared loop state for the patterned GER (see :class:`_GemvCursor`)."""

    __slots__ = ("in_a", "r", "done", "axs", "ys")

    def __init__(self):
        self.in_a = False      # suspended inside one tile's matrix phase
        self.r = 0             # current row within the tile
        self.done = 0          # elements consumed in the current row
        self.axs = None        # alpha * x block as an ndarray
        self.ys = None         # current y block as an ndarray


def ger_kernel(n, m, alpha, ch_a, ch_x, ch_y, ch_out,
               tile_n, tile_m, width=1, dtype=np.float32):
    """GER A' = A + alpha*x*y^T, A in tiles by rows (map-class routine).

    ``ch_x`` carries x in T_N blocks, once (each block reused across its
    row of tiles); ``ch_y`` carries y in T_M blocks, the whole vector
    replayed ceil(N/T_N) times; ``ch_out`` receives A' in the same tile
    order as ``ch_a``.

    When ``width`` divides ``tile_m`` each tile's matrix phase is
    statically regular — one W-wide burst of A in and one W-wide burst
    of A' out per cycle — so the attached pattern is *executable* over
    both matrix ports and the bulk/certified engines replay whole tiles
    arithmetically; only the x/y block loads stay event-stepped.
    """
    _check_tiles(n, tile_n, m, tile_m)
    alpha = dtype(alpha)
    st = _GerCursor()

    def gen():
        for ti in range(n // tile_n):
            xs = yield from _pop_block(ch_x, tile_n, width)
            st.axs = alpha * np.asarray(xs, dtype=dtype)
            for tj in range(m // tile_m):
                ys = yield from _pop_block(ch_y, tile_m, width)
                st.ys = np.asarray(ys, dtype=dtype)
                st.r = 0
                st.done = 0
                st.in_a = True
                while st.in_a:
                    c = min(width, tile_m - st.done)
                    avals = _chunk((yield Pop(ch_a, c)), c)
                    xr = st.axs[st.r]
                    yield Push(ch_out, tuple(
                        dtype(a) + xr * y
                        for a, y in zip(avals,
                                        st.ys[st.done:st.done + c])), None)
                    st.done += c
                    if st.done == tile_m:
                        st.done = 0
                        st.r += 1
                        if st.r == tile_n:
                            st.in_a = False
                    yield Clock()

    if tile_m % width:
        pat = StaticPattern.declare(
            reads=((ch_a, width), (ch_x, width), (ch_y, width)),
            writes=((ch_out, width, None),),
            read_totals=(n * m, n, m * (n // tile_n)),
            write_totals=(n * m,))
        return PatternedGenerator(gen(), pat)

    cpr = tile_m // width               # A-bursts per row

    def ready():
        if not st.in_a:
            return 0
        return tile_n * cpr - (st.r * cpr + st.done // width)

    def block(k, ins):
        amat = np.asarray(ins[0]).reshape(k, width)
        pos = st.r * cpr + st.done // width + np.arange(k)
        # Each burst is an independent elementwise map: A + (alpha*x_r)
        # times the matching y segment — same products and adds as the
        # scalar loop, vectorized across bursts.
        out = amat + (st.axs[pos // cpr, None]
                      * st.ys.reshape(cpr, width)[pos % cpr])
        p = st.r * cpr + st.done // width + k
        st.r, db = divmod(p, cpr)
        st.done = db * width
        if st.r == tile_n:
            st.in_a = False
        return [out.reshape(-1)]

    pat = StaticPattern(
        reads=((ch_a, width),), writes=((ch_out, width, None),),
        ii=1, dtype=dtype, ready=ready, block=block,
        read_totals=(n * m,), write_totals=(n * m,))
    return PatternedGenerator(gen(), pat)


@_declared(reads=("ch_a", "ch_x_row", "ch_x_col"), writes=("ch_out",))
def syr_kernel(n, alpha, ch_a, ch_x_row, ch_x_col, ch_out,
               tile_n, tile_m, width=1, dtype=np.float32):
    """SYR A' = A + alpha*x*x^T on generic dense storage.

    Implemented as GER with both vector operands fed from x: the interface
    layer streams x twice (``ch_x_row`` in T_N blocks once, ``ch_x_col``
    in T_M blocks replayed), as the paper's generic-routine fallback for
    specialized matrix types prescribes.
    """
    yield from ger_kernel(n, n, alpha, ch_a, ch_x_row, ch_x_col, ch_out,
                          tile_n, tile_m, width, dtype)


@_declared(reads=("ch_a", "ch_x_row", "ch_y_col", "ch_y_row", "ch_x_col"), writes=("ch_out",))
def syr2_kernel(n, alpha, ch_a, ch_x_row, ch_y_col, ch_y_row, ch_x_col,
                ch_out, tile_n, tile_m, width=1, dtype=np.float32):
    """SYR2 A' = A + alpha*(x*y^T + y*x^T) on generic dense storage.

    Row-block streams (x then y, T_N blocks, once) and column-block
    streams (y then x, T_M blocks, replayed) arrive on four channels.
    """
    _check_tiles(n, tile_n, n, tile_m)
    alpha = dtype(alpha)
    for ti in range(n // tile_n):
        xs = yield from _pop_block(ch_x_row, tile_n, width)
        ys_row = yield from _pop_block(ch_y_row, tile_n, width)
        for tj in range(n // tile_m):
            ys = yield from _pop_block(ch_y_col, tile_m, width)
            xs_col = yield from _pop_block(ch_x_col, tile_m, width)
            for r in range(tile_n):
                xr = alpha * dtype(xs[r])
                yr = alpha * dtype(ys_row[r])
                done = 0
                while done < tile_m:
                    c = min(width, tile_m - done)
                    avals = _chunk((yield Pop(ch_a, c)), c)
                    yield Push(ch_out, tuple(
                        dtype(a) + xr * dtype(yv) + yr * dtype(xv)
                        for a, yv, xv in zip(avals, ys[done:done + c],
                                             xs_col[done:done + c])), None)
                    yield Clock()
                    done += c


@_declared(reads=("ch_a", "ch_b"), writes=("ch_out",),
           defer=lambda a: a["n"])
def trsv_kernel(n, ch_a, ch_b, ch_out, width=1, dtype=np.float32,
                lower=True, unit_diag=False):
    """TRSV: solve A x = b for triangular A streamed row by row.

    A arrives as the full N x N generic storage, rows in solve order
    (top-down for lower, bottom-up for upper); computed x values stay in
    an on-chip buffer, so each row's partial dot product uses only
    already-solved entries.  The loop-carried dependency makes this the
    map-reduce routine with the worst initiation interval in real HLS; the
    streamed version still processes W matrix elements per cycle.
    """
    if n < 1:
        raise ValueError("n must be positive")
    x = [dtype(0)] * n
    rows = range(n) if lower else range(n - 1, -1, -1)
    for i in rows:
        bi = yield Pop(ch_b, 1)
        acc = dtype(0)
        row = []
        done = 0
        while done < n:
            c = min(width, n - done)
            avals = _chunk((yield Pop(ch_a, c)), c)
            row.extend(dtype(a) for a in avals)
            yield Clock()
            done += c
        js = range(i) if lower else range(i + 1, n)
        for j in js:
            acc = acc + row[j] * x[j]
        xi = dtype(bi) - acc
        if not unit_diag:
            xi = xi / row[i]
        x[i] = xi
        yield Push(ch_out, (xi,), None)
        yield Clock()


def _check_tiles(n, tile_n, m, tile_m):
    if n < 1 or m < 1:
        raise ValueError("dimensions must be positive")
    if n % tile_n or m % tile_m:
        raise ValueError(
            f"matrix {n}x{m} not divisible into {tile_n}x{tile_m} tiles")


# ---------------------------------------------------------------------------
# Sharded multi-lane GEMV (HBM many-channel placement)
# ---------------------------------------------------------------------------

def shard_row_tiles(n, tile_n, lanes):
    """Round-robin row-tile partition: lane ``l`` owns global row tiles
    ``l, l+lanes, l+2*lanes, ...``.

    Returns one list of global row-tile indices per lane.  Striping (not
    contiguous blocks) keeps the lanes' workloads balanced for any tile
    count and makes the merge schedule a plain round-robin.
    """
    if n < 1 or tile_n < 1 or n % tile_n:
        raise ValueError(f"n={n} not divisible into {tile_n}-row tiles")
    tiles = n // tile_n
    if not (1 <= lanes <= tiles):
        raise ValueError(f"lanes={lanes} must be in [1, {tiles}] "
                         f"(one row tile per lane minimum)")
    return [list(range(lane, tiles, lanes)) for lane in range(lanes)]


def shard_gemv_streams(a, y, tile_n, tile_m, lanes, dtype=np.float32):
    """Host-side pre-sharding for :func:`gemv_row_tiles_sharded`.

    Returns ``(a_streams, y_streams)``: per lane, the flat A tile stream
    (the lane's row tiles in ascending global order, each as a full row
    of T_N x T_M tiles with row-major elements — exactly the
    :func:`gemv_row_tiles` contract for the lane's sub-matrix) and the
    matching y blocks.  Each lane's stream is what gets bound to that
    lane's memory channel.
    """
    a = np.asarray(a, dtype=dtype)
    y = np.asarray(y, dtype=dtype)
    n, m = a.shape
    _check_tiles(n, tile_n, m, tile_m)
    parts = shard_row_tiles(n, tile_n, lanes)
    a_streams, y_streams = [], []
    for tiles in parts:
        blocks = [a[t * tile_n:(t + 1) * tile_n,
                    tj * tile_m:(tj + 1) * tile_m].reshape(-1)
                  for t in tiles for tj in range(m // tile_m)]
        a_streams.append(np.concatenate(blocks))
        y_streams.append(np.concatenate(
            [y[t * tile_n:(t + 1) * tile_n] for t in tiles]))
    return a_streams, y_streams


def gemv_row_tiles_sharded(n, m, alpha, beta, lane_ports, ch_out,
                           tile_n, tile_m, width=1, dtype=np.float32):
    """Multi-lane GEMV: row tiles striped across lanes, merged in order.

    ``lane_ports`` is one ``(ch_a, ch_x, ch_y, ch_part)`` tuple per lane.
    Each lane runs an unmodified :func:`gemv_row_tiles` over its share of
    row tiles (so every output row's arithmetic — order, rounding, adder
    tree — is exactly the single-lane computation), pushing its y' blocks
    into ``ch_part``; a :func:`~repro.fpga.util.merge_kernel` reassembles
    the T_N blocks into global row order on ``ch_out``.  The result is
    bitwise identical to the single-lane kernel while each lane's A
    stream can live in (and draw bandwidth from) its own memory channel.

    Returns ``(lane_gens, merge_gen)``; register each as a kernel.
    """
    from ..fpga.util import merge_kernel

    lanes = len(lane_ports)
    _check_tiles(n, tile_n, m, tile_m)
    parts = shard_row_tiles(n, tile_n, lanes)
    lane_gens = []
    for (ch_a, ch_x, ch_y, ch_part), tiles in zip(lane_ports, parts):
        lane_gens.append(gemv_row_tiles(
            len(tiles) * tile_n, m, alpha, beta, ch_a, ch_x, ch_y,
            ch_part, tile_n, tile_m, width, dtype))
    schedule = [(t % lanes, tile_n) for t in range(n // tile_n)]
    merge = merge_kernel([p[3] for p in lane_ports], ch_out, schedule,
                         width)
    return lane_gens, merge


def build_sharded_gemv_engine(a, x, y, alpha=1.0, beta=1.0, *, lanes,
                              tile_n, tile_m, width=1, mode="event",
                              dtype=np.float32, mem=None, placements=None,
                              part_depth=None, share_x=False,
                              max_cycles=None):
    """Wire a complete sharded GEMV design and return ``(engine, out)``.

    With ``mem`` (a :class:`~repro.fpga.memory.DramModel`), each lane's
    pre-sharded A stream is bound as its own DRAM buffer — placed on
    channel ``lane % num_channels`` unless ``placements`` (one
    :class:`~repro.fpga.memory.Placement` per lane) says otherwise — and
    streamed through the patterned linear read kernel, so per-channel
    bandwidth limits throttle each lane independently.  Without ``mem``,
    A is generated on chip (no DRAM term), the Sec. VI-B scaling setup.

    ``share_x`` feeds every lane's x replay from one duplicated source —
    the reconvergent shape where an undersized ``part_depth`` (the
    lane-partial merge channels) provably deadlocks: a lane that runs
    ahead fills its partial channel, the shared x duplicator blocks on
    that lane, and the lane the merge is actually waiting on starves.
    ``run(engine)`` is left to the caller so observers can be attached.
    """
    from ..fpga.engine import Engine
    from ..fpga.memory import read_kernel
    from ..fpga.util import duplicate_kernel, sink_kernel, source_kernel

    a = np.asarray(a, dtype=dtype)
    x = np.asarray(x, dtype=dtype)
    y = np.asarray(y, dtype=dtype)
    n, m = a.shape
    parts = shard_row_tiles(n, tile_n, lanes)
    if share_x and len({len(p) for p in parts}) != 1:
        raise ValueError("share_x requires the row-tile count to divide "
                         "evenly across lanes")
    a_streams, y_streams = shard_gemv_streams(a, y, tile_n, tile_m, lanes,
                                              dtype)
    depth = max(8 * width, 2 * tile_m)
    if part_depth is None:
        part_depth = max(2 * tile_n, width)

    eng = Engine(mode=mode, memory=mem)
    lane_ports = []
    for lane in range(lanes):
        lane_ports.append((eng.channel(f"a{lane}", depth),
                           eng.channel(f"x{lane}", depth),
                           eng.channel(f"y{lane}", depth),
                           eng.channel(f"part{lane}", part_depth)))
    ch_out = eng.channel("out", depth)

    for lane, (ca, cx, cy, _) in enumerate(lane_ports):
        replay = len(parts[lane])
        if mem is not None:
            pl = placements[lane] if placements is not None else None
            bank = None if pl is not None else lane % mem.num_banks
            buf = mem.bind(f"A{lane}", a_streams[lane], bank=bank,
                           placement=pl)
            eng.add_kernel(f"readA{lane}", read_kernel(mem, buf, ca, width),
                           latency=2)
        else:
            eng.add_kernel(f"srcA{lane}",
                           source_kernel(ca, a_streams[lane], width),
                           latency=2)
        if not share_x:
            eng.add_kernel(f"srcx{lane}",
                           source_kernel(cx, x, width, repeat=replay),
                           latency=2)
        eng.add_kernel(f"srcy{lane}",
                       source_kernel(cy, y_streams[lane], width), latency=2)
    if share_x:
        cx0 = eng.channel("xroot", depth)
        replay = len(parts[0])
        eng.add_kernel("srcx", source_kernel(cx0, x, width, repeat=replay),
                       latency=2)
        eng.add_kernel("dupx", duplicate_kernel(
            cx0, [p[1] for p in lane_ports], m * replay, width))

    lane_gens, merge = gemv_row_tiles_sharded(
        n, m, alpha, beta, lane_ports, ch_out, tile_n, tile_m, width, dtype)
    for lane, g in enumerate(lane_gens):
        eng.add_kernel(f"gemv{lane}", g, latency=8)
    eng.add_kernel("merge", merge, latency=2)
    out: list = []
    eng.add_kernel("sink", sink_kernel(ch_out, n, width, out))
    return eng, out
