"""BICG kernel: q = A p and s = A^T r (Sec. V-A, Fig. 7).

Both matrix-vector products read A.  The streaming composition reads A
from DRAM once and fans the stream out to a GEMV and a transposed GEMV
that accept the *same* tile schedule, halving the dominant I/O term
(2NM -> NM) while the two modules run in parallel.
"""

from __future__ import annotations

import numpy as np

from ..blas import level2, reference
from ..fpga.engine import Engine
from ..fpga.memory import read_kernel, write_kernel
from ..fpga.resources import level1_latency
from ..fpga.util import duplicate_kernel
from ..host.api import Fblas
from ..host.context import FblasContext
from ..streaming import MDAG, matrix_stream, row_tiles, vector_stream
from ..telemetry.runtime import span as _telemetry_span
from .axpydot import AppResult


def bicg_reference(a, p, r):
    """Ground truth: (q, s) = (A p, A^T r)."""
    zq = np.zeros(a.shape[0], dtype=a.dtype)
    zs = np.zeros(a.shape[1], dtype=a.dtype)
    return (reference.gemv(1.0, a, p, 0.0, zq),
            reference.gemv(1.0, a, r, 0.0, zs, trans=True))


def bicg_host(fb: Fblas, a, p, r) -> AppResult:
    """Two independent GEMV host calls, each reading A from DRAM."""
    n, m = a.data.shape
    start = len(fb.records)
    io_before = fb.context.mem.total_elements_moved
    q = fb.allocate(n, dtype=a.data.dtype)
    s = fb.allocate(m, dtype=a.data.dtype)
    qv = fb.gemv(1.0, a, p, 0.0, q)
    sv = fb.gemv(1.0, a, r, 0.0, s, trans=True)
    recs = fb.records[start:]
    io = (fb.context.mem.total_elements_moved - io_before
          if fb.mode == "simulate" else sum(rr.io_elements for rr in recs))
    return AppResult((qv, sv), sum(rr.cycles for rr in recs), io,
                     sum(rr.seconds for rr in recs))


def bicg_streaming(ctx: FblasContext, a, p, r, tile: int = 4,
                   width: int = 4, mode: str = "event") -> AppResult:
    """One read of A feeds both GEMVs (Fig. 7)."""
    with _telemetry_span("app.bicg", cat="app", n=a.data.shape[0],
                         m=a.data.shape[1], tile=tile, width=width,
                         mode=mode):
        return _bicg_streaming(ctx, a, p, r, tile, width, mode)


def _bicg_streaming(ctx, a, p, r, tile, width, mode) -> AppResult:
    n, m = a.data.shape
    dtype = a.data.dtype.type
    precision = "single" if a.data.dtype == np.float32 else "double"
    tn = tile if n % tile == 0 else n
    tm = tile if m % tile == 0 else m
    sched = row_tiles(n, m, tn, tm)
    io_before = ctx.mem.total_elements_moved
    eng = Engine(memory=ctx.mem, mode=mode)
    # The fan-out channels must absorb the cycles one GEMV spends popping
    # its vector blocks while the other keeps consuming A.
    fan_depth = max(8 * width, 4 * max(tn, tm))
    ca = eng.channel("A", 8 * width)
    ca1 = eng.channel("A1", fan_depth)
    ca2 = eng.channel("A2", fan_depth)
    cp = eng.channel("p", 8 * width)
    cr = eng.channel("r", 8 * width)
    cy1 = eng.channel("y_q", 8 * width)
    cy2 = eng.channel("y_s", 8 * width)
    cq = eng.channel("q", 8 * width)
    cs = eng.channel("s", 8 * width)
    q = ctx.mem.allocate("bicg_q", n, dtype=a.data.dtype)
    s = ctx.mem.allocate("bicg_s", m, dtype=a.data.dtype)
    zeros_n = ctx.mem.bind("bicg_zn", np.zeros(n, dtype=a.data.dtype))
    zeros_m = ctx.mem.bind("bicg_zm", np.zeros(m, dtype=a.data.dtype))
    eng.add_kernel("read_A", read_kernel(ctx.mem, a, ca, width,
                                         order=sched.indices()))
    eng.add_kernel("fanout", duplicate_kernel(ca, (ca1, ca2), n * m, width))
    eng.add_kernel("read_p", read_kernel(ctx.mem, p, cp, width,
                                         repeat=n // tn))
    eng.add_kernel("read_r", read_kernel(ctx.mem, r, cr, width))
    eng.add_kernel("read_zn", read_kernel(ctx.mem, zeros_n, cy1, width))
    eng.add_kernel("read_zm", read_kernel(ctx.mem, zeros_m, cy2, width))
    lat = level1_latency("map_reduce", width, precision)
    eng.add_kernel("gemv", level2.gemv_row_tiles(
        n, m, 1.0, 0.0, ca1, cp, cy1, cq, tn, tm, width, dtype), latency=lat)
    eng.add_kernel("gemvT", level2.gemv_transposed_row_tiles(
        n, m, 1.0, 0.0, ca2, cr, cy2, cs, tn, tm, width, dtype), latency=lat)
    eng.add_kernel("write_q", write_kernel(ctx.mem, q, cq, n, width))
    eng.add_kernel("write_s", write_kernel(ctx.mem, s, cs, m, width))
    report = eng.run()
    io = ctx.mem.total_elements_moved - io_before
    freq = ctx.frequency_for("level2", precision)
    return AppResult((np.array(q.data), np.array(s.data)),
                     report.cycles, io, report.cycles / freq,
                     kernel_steps=report.kernel_steps)


def bicg_mdag(n: int, m: int, tn: int, tm: int) -> MDAG:
    """The Fig. 7 MDAG: a valid fan-out multitree."""
    g = MDAG()
    g.add_interface("read_A")
    g.add_interface("read_p")
    g.add_interface("read_r")
    g.add_module("gemv")
    g.add_module("gemvT")
    g.add_interface("write_q")
    g.add_interface("write_s")
    asig = matrix_stream(row_tiles(n, m, tn, tm))
    g.connect("read_A", "gemv", asig, asig)
    g.connect("read_A", "gemvT", asig, asig)
    psig = vector_stream(m, replay=n // tn)
    g.connect("read_p", "gemv", psig, psig)
    g.connect("read_r", "gemvT", vector_stream(n), vector_stream(n))
    g.connect("gemv", "write_q", vector_stream(n), vector_stream(n))
    g.connect("gemvT", "write_s", vector_stream(m), vector_stream(m))
    return g
