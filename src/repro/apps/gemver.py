"""GEMVER (Sec. V-C, Fig. 9): a complex, partially-streamable composition.

Computes B = A + u1 v1^T + u2 v2^T;  x = beta*B^T y + z;  w = alpha*B x.

Classic BLAS needs two GER, two GEMV and two copies (~8N^2 I/O, 5N^2
cycles).  The fully streamed MDAG is a non-multitree (B feeds both the
x-computation and the w-computation through reconvergent paths), so the
paper's implementation splits it into two sequential multitree components:

1. GER -> GER -> GEMV^T fused: one pass over A produces B (written to
   DRAM) and x;
2. the final GEMV reads B and x back.

Total: ~3N^2 I/O and 2N^2 cycles — the Fig. 11 GEMVER speedup.
"""

from __future__ import annotations

import numpy as np

from ..blas import level2, reference
from ..fpga.engine import Engine
from ..fpga.memory import read_kernel, write_kernel
from ..fpga.resources import level1_latency
from ..fpga.util import duplicate_kernel
from ..host.api import Fblas
from ..host.context import FblasContext
from ..streaming import MDAG, matrix_stream, row_tiles, vector_stream
from ..telemetry.runtime import span as _telemetry_span
from .axpydot import AppResult


def gemver_reference(a, u1, v1, u2, v2, y, z, alpha, beta):
    """Ground truth: (B, x, w)."""
    b = a + np.outer(u1, v1) + np.outer(u2, v2)
    x = beta * (b.T @ y) + z
    w = alpha * (b @ x)
    return b, x, w


def gemver_host(fb: Fblas, a, u1, v1, u2, v2, y, z, alpha, beta) -> AppResult:
    """Classic BLAS sequence: 2 copies, 2 GER, 2 GEMV."""
    n = a.data.shape[0]
    start = len(fb.records)
    io_before = fb.context.mem.total_elements_moved
    b = fb.allocate((n, n), dtype=a.data.dtype)
    x = fb.allocate(n, dtype=a.data.dtype)
    w = fb.allocate(n, dtype=a.data.dtype)
    fb.copy(a, b)                        # B <- A
    fb.ger(1.0, u1, v1, b)               # B += u1 v1^T
    fb.ger(1.0, u2, v2, b)               # B += u2 v2^T
    fb.copy(z, x)                        # x <- z
    fb.gemv(beta, b, y, 1.0, x, trans=True)   # x = beta*B^T y + z
    wv = fb.gemv(alpha, b, x, 0.0, w)         # w = alpha*B x
    recs = fb.records[start:]
    io = (fb.context.mem.total_elements_moved - io_before
          if fb.mode == "simulate" else sum(rr.io_elements for rr in recs))
    return AppResult((fb.copy_from_device(b), fb.copy_from_device(x), wv),
                     sum(rr.cycles for rr in recs), io,
                     sum(rr.seconds for rr in recs))


def gemver_streaming(ctx: FblasContext, a, u1, v1, u2, v2, y, z,
                     alpha, beta, tile: int = 4, width: int = 4,
                     mode: str = "event") -> AppResult:
    """Two sequential streaming components (Fig. 9)."""
    with _telemetry_span("app.gemver", cat="app", n=a.data.shape[0],
                         tile=tile, width=width, mode=mode):
        return _gemver_streaming(ctx, a, u1, v1, u2, v2, y, z, alpha,
                                 beta, tile, width, mode)


def _gemver_streaming(ctx, a, u1, v1, u2, v2, y, z, alpha, beta, tile,
                      width, mode) -> AppResult:
    n = a.data.shape[0]
    dtype = a.data.dtype.type
    precision = "single" if a.data.dtype == np.float32 else "double"
    tn = tile if n % tile == 0 else n
    sched = row_tiles(n, n, tn, tn)
    replay = n // tn
    io_before = ctx.mem.total_elements_moved
    b = ctx.mem.allocate("gemver_B", (n, n), dtype=a.data.dtype)
    x = ctx.mem.allocate("gemver_x", n, dtype=a.data.dtype)
    w = ctx.mem.allocate("gemver_w", n, dtype=a.data.dtype)
    lat_map = level1_latency("map", width, precision)
    lat_red = level1_latency("map_reduce", width, precision)

    # -- component 1: GER -> GER -> (write B, GEMV^T producing x) ---------
    eng1 = Engine(memory=ctx.mem, mode=mode)
    ca = eng1.channel("A", 8 * width)
    cb1 = eng1.channel("B1", 8 * width)
    cb2 = eng1.channel("B2", 8 * width)
    cbw = eng1.channel("B_to_mem", max(8 * width, 4 * tn))
    cbg = eng1.channel("B_to_gemv", max(8 * width, 4 * tn))
    cu1 = eng1.channel("u1", 8 * width)
    cv1 = eng1.channel("v1", 8 * width)
    cu2 = eng1.channel("u2", 8 * width)
    cv2 = eng1.channel("v2", 8 * width)
    cy = eng1.channel("y", 8 * width)
    cz = eng1.channel("z", 8 * width)
    cx = eng1.channel("x", 8 * width)
    eng1.add_kernel("read_A", read_kernel(ctx.mem, a, ca, width,
                                          order=sched.indices()))
    eng1.add_kernel("read_u1", read_kernel(ctx.mem, u1, cu1, width))
    eng1.add_kernel("read_v1", read_kernel(ctx.mem, v1, cv1, width,
                                           repeat=replay))
    eng1.add_kernel("read_u2", read_kernel(ctx.mem, u2, cu2, width))
    eng1.add_kernel("read_v2", read_kernel(ctx.mem, v2, cv2, width,
                                           repeat=replay))
    eng1.add_kernel("read_y", read_kernel(ctx.mem, y, cy, width))
    eng1.add_kernel("read_z", read_kernel(ctx.mem, z, cz, width))
    eng1.add_kernel("ger1", level2.ger_kernel(
        n, n, 1.0, ca, cu1, cv1, cb1, tn, tn, width, dtype), latency=lat_map)
    eng1.add_kernel("ger2", level2.ger_kernel(
        n, n, 1.0, cb1, cu2, cv2, cb2, tn, tn, width, dtype),
        latency=lat_map)
    eng1.add_kernel("fanout", duplicate_kernel(cb2, (cbw, cbg), n * n,
                                               width))
    eng1.add_kernel("gemvT", level2.gemv_transposed_row_tiles(
        n, n, beta, 1.0, cbg, cy, cz, cx, tn, tn, width, dtype),
        latency=lat_red)
    eng1.add_kernel("write_B", write_kernel(ctx.mem, b, cbw, n * n, width,
                                            order=sched.indices()))
    eng1.add_kernel("write_x", write_kernel(ctx.mem, x, cx, n, width))
    rep1 = eng1.run()

    # -- component 2: w = alpha * B x -------------------------------------
    eng2 = Engine(memory=ctx.mem, mode=mode)
    cb = eng2.channel("B", 8 * width)
    cx2 = eng2.channel("x", 8 * width)
    cy0 = eng2.channel("zeros", 8 * width)
    cw = eng2.channel("w", 8 * width)
    zeros = ctx.mem.bind("gemver_zeros", np.zeros(n, dtype=a.data.dtype))
    eng2.add_kernel("read_B", read_kernel(ctx.mem, b, cb, width,
                                          order=sched.indices()))
    eng2.add_kernel("read_x", read_kernel(ctx.mem, x, cx2, width,
                                          repeat=replay))
    eng2.add_kernel("read_zeros", read_kernel(ctx.mem, zeros, cy0, width))
    eng2.add_kernel("gemv", level2.gemv_row_tiles(
        n, n, alpha, 0.0, cb, cx2, cy0, cw, tn, tn, width, dtype),
        latency=lat_red)
    eng2.add_kernel("write_w", write_kernel(ctx.mem, w, cw, n, width))
    rep2 = eng2.run()

    io = ctx.mem.total_elements_moved - io_before
    cycles = rep1.cycles + rep2.cycles
    freq = ctx.frequency_for("level2", precision)
    return AppResult((np.array(b.data), np.array(x.data), np.array(w.data)),
                     cycles, io, cycles / freq,
                     kernel_steps=rep1.kernel_steps + rep2.kernel_steps)


def gemver_full_streaming_mdag(n: int, tn: int) -> MDAG:
    """The *fully* streamed GEMVER MDAG — invalid (non-multitree).

    B fans out after the second GER toward both the x computation and the
    final GEMV, and x reconverges with B at that GEMV: two vertex-disjoint
    paths, hence the paper resorts to two sequential components.
    """
    g = MDAG()
    g.add_interface("read_A")
    g.add_module("ger1")
    g.add_module("ger2")
    g.add_module("gemvT")
    g.add_module("gemv_w")
    g.add_interface("write_w")
    bsig = matrix_stream(row_tiles(n, n, tn, tn))
    g.connect("read_A", "ger1", bsig, bsig)
    g.connect("ger1", "ger2", bsig, bsig)
    g.connect("ger2", "gemvT", bsig, bsig)
    g.connect("ger2", "gemv_w", bsig, bsig)
    xsig = vector_stream(n, replay=n // tn)
    g.connect("gemvT", "gemv_w", vector_stream(n), xsig)
    g.connect("gemv_w", "write_w", vector_stream(n), vector_stream(n))
    return g


def gemver_component1_mdag(n: int, tn: int) -> MDAG:
    """Component 1 of the paper's split (valid multitree)."""
    g = MDAG()
    g.add_interface("read_A")
    g.add_module("ger1")
    g.add_module("ger2")
    g.add_module("gemvT")
    g.add_interface("write_B")
    g.add_interface("write_x")
    bsig = matrix_stream(row_tiles(n, n, tn, tn))
    g.connect("read_A", "ger1", bsig, bsig)
    g.connect("ger1", "ger2", bsig, bsig)
    g.connect("ger2", "write_B", bsig, bsig)
    g.connect("ger2", "gemvT", bsig, bsig)
    g.connect("gemvT", "write_x", vector_stream(n), vector_stream(n))
    return g
