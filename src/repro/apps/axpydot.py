"""AXPYDOT: z = w - alpha*v;  beta = z^T u  (Sec. V-A, Fig. 6).

The host-layer version needs COPY + AXPY + DOT (7N memory I/O, three
sequential pipelines); the streaming composition chains AXPY into DOT
through an on-chip channel (3N+1 I/O, one pipeline).  On the paper's
Stratix board the host version is additionally penalised because z is
read and written in the same DDR bank — our DRAM model reproduces that
contention, which is why measured speedups approach 4 rather than the
ideal 3 (Sec. VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..blas import level1, reference
from ..fpga.engine import Engine
from ..fpga.memory import read_kernel
from ..fpga.resources import level1_latency
from ..fpga.util import sink_kernel
from ..host.api import Fblas
from ..host.context import FblasContext
from ..streaming import MDAG, scalar_stream, vector_stream
from ..telemetry.runtime import span as _telemetry_span


def axpydot_reference(w, v, u, alpha):
    """Ground truth: beta = (w - alpha*v)^T u."""
    z = reference.axpy(-alpha, v, w)
    return reference.dot(z, u)


#: Schema tag of :meth:`AppResult.to_dict` documents.
APP_RESULT_SCHEMA = "repro.appresult/1"


def _jsonify(v):
    """Convert an app result value to plain JSON-able Python."""
    if isinstance(v, np.ndarray):
        return v.tolist()
    if isinstance(v, (np.floating, np.integer)):
        return v.item()
    if isinstance(v, (tuple, list)):
        return [_jsonify(x) for x in v]
    return v


@dataclass
class AppResult:
    """Outcome of one application run."""

    value: object
    cycles: int
    io_elements: int
    seconds: float
    #: Total live kernel-cycles simulated (streaming versions only).
    kernel_steps: int = 0

    def to_dict(self, include_value: bool = True) -> dict:
        """JSON-able form (schema ``repro.appresult/1``).

        The accounting keys (``cycles``, ``kernel_steps``) use the same
        names as :meth:`repro.fpga.engine.SimReport.to_dict` and the
        benchmark baselines, so artifacts agree on vocabulary.  Numpy
        values are converted to plain lists/floats.
        """
        d = {
            "schema": APP_RESULT_SCHEMA,
            "cycles": self.cycles,
            "io_elements": self.io_elements,
            "seconds": self.seconds,
            "kernel_steps": self.kernel_steps,
        }
        if include_value:
            d["value"] = _jsonify(self.value)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "AppResult":
        """Inverse of :meth:`to_dict` (values stay plain Python)."""
        return cls(value=d.get("value"), cycles=d["cycles"],
                   io_elements=d["io_elements"], seconds=d["seconds"],
                   kernel_steps=d.get("kernel_steps", 0))


def axpydot_host(fb: Fblas, w, v, u, alpha) -> AppResult:
    """Execute AXPYDOT with one host call per BLAS routine.

    ``w``, ``v``, ``u`` are device buffers.  A fresh z buffer is allocated
    (forced into a single bank, like the paper's BSP) and round-trips
    through DRAM between the calls.
    """
    n = w.num_elements
    start = len(fb.records)
    io_before = fb.context.mem.total_elements_moved
    # Place z in a bank not used by the inputs when one exists; even so,
    # AXPY reads and writes z in the *same* module — the self-contention
    # the paper blames for the >3x measured speedup.
    if fb.context.mem.interleaving:
        z = fb.allocate(n, dtype=w.data.dtype)
    else:
        used = {w.bank, v.bank, u.bank}
        free = [b for b in range(fb.context.mem.num_banks)
                if b not in used]
        z = fb.allocate(n, dtype=w.data.dtype,
                        bank=free[0] if free else (w.bank or 0))
    fb.copy(w, z)
    fb.axpy(-alpha, v, z)
    beta = fb.dot(z, u)
    recs = fb.records[start:]
    cycles = sum(r.cycles for r in recs)
    seconds = sum(r.seconds for r in recs)
    io = (fb.context.mem.total_elements_moved - io_before
          if fb.mode == "simulate" else sum(r.io_elements for r in recs))
    return AppResult(beta, cycles, io, seconds)


def axpydot_streaming(ctx: FblasContext, w, v, u, alpha,
                      width: int = 16, mode: str = "event") -> AppResult:
    """Execute AXPYDOT as one streaming composition (Fig. 6)."""
    with _telemetry_span("app.axpydot", cat="app", n=w.num_elements,
                         width=width, mode=mode):
        return _axpydot_streaming(ctx, w, v, u, alpha, width, mode)


def build_axpydot_engine(ctx, w, v, u, alpha, width: int = 16,
                         mode: str = "event", schedule_cache=None):
    """Build the Fig. 6 streaming engine without running it.

    Returns ``(engine, out)`` where ``out`` collects beta.  Exposed so
    the static analyzer CLI (``python -m repro.analysis --app axpydot``)
    and the certified-schedule tests can inspect the design pre-flight.
    """
    n = w.num_elements
    dtype = w.data.dtype.type
    precision = "single" if w.data.dtype == np.float32 else "double"
    eng = Engine(memory=ctx.mem, mode=mode, schedule_cache=schedule_cache)
    cw = eng.channel("w", 4 * width)
    cv = eng.channel("v", 4 * width)
    cu = eng.channel("u", 4 * width)
    cz = eng.channel("z", 4 * width)          # the on-chip AXPY->DOT edge
    cres = eng.channel("beta", 4)
    eng.add_kernel("read_w", read_kernel(ctx.mem, w, cw, width))
    eng.add_kernel("read_v", read_kernel(ctx.mem, v, cv, width))
    eng.add_kernel("read_u", read_kernel(ctx.mem, u, cu, width))
    eng.add_kernel("axpy", level1.axpy_kernel(
        n, -alpha, cv, cw, cz, width, dtype),
        latency=level1_latency("map", width, precision))
    eng.add_kernel("dot", level1.dot_kernel(n, cz, cu, cres, width, dtype),
        latency=level1_latency("map_reduce", width, precision))
    out = []
    eng.add_kernel("sink", sink_kernel(cres, 1, 1, out))
    return eng, out


def _axpydot_streaming(ctx, w, v, u, alpha, width, mode) -> AppResult:
    n = w.num_elements
    precision = "single" if w.data.dtype == np.float32 else "double"
    io_before = ctx.mem.total_elements_moved
    eng, out = build_axpydot_engine(ctx, w, v, u, alpha, width, mode)
    report = eng.run()
    io = ctx.mem.total_elements_moved - io_before + 1
    freq = ctx.frequency_for("level1", precision)
    return AppResult(out[0], report.cycles, io, report.cycles / freq,
                     kernel_steps=report.kernel_steps)


def axpydot_mdag(n: int) -> MDAG:
    """The Fig. 6 MDAG, for static validity analysis."""
    g = MDAG()
    g.add_interface("read_w")
    g.add_interface("read_v")
    g.add_interface("read_u")
    g.add_module("axpy")
    g.add_module("dot")
    g.add_interface("write_beta")
    sig = vector_stream(n)
    g.connect("read_w", "axpy", sig, sig)
    g.connect("read_v", "axpy", sig, sig)
    g.connect("axpy", "dot", sig, sig)
    g.connect("read_u", "dot", sig, sig)
    g.connect("dot", "write_beta", scalar_stream(), scalar_stream())
    return g
