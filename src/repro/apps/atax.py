"""ATAX: y = A^T (A x) (Sec. V-B, Fig. 8) — the invalid composition.

The natural streaming composition shares one read of A between the two
GEMVs and chains the first's output into the second.  But the first GEMV
emits its first output block only after consuming an entire row of tiles
of A, while the second cannot consume any of A until that block arrives:
with two vertex-disjoint paths from the A interface to the second GEMV,
the composition **stalls forever** unless the second GEMV's A channel can
buffer a whole row of tiles (M * T_N elements — the paper's N*T_N in its
naming).  Remedies (Sec. V-B):

a) size that channel to the reordering window (only possible when the
   problem size is static) — :func:`atax_streaming` with
   ``channel_depth="auto"``;
b) break the MDAG in two components that read A independently —
   :func:`atax_broken`, which matches the non-streamed I/O volume but
   still overlaps the two pipelines.
"""

from __future__ import annotations

import numpy as np

from ..blas import level2, reference
from ..fpga.engine import Engine
from ..fpga.memory import read_kernel, write_kernel
from ..fpga.resources import level1_latency
from ..fpga.util import duplicate_kernel
from ..host.api import Fblas
from ..host.context import FblasContext
from ..models.iomodel import atax_min_channel_depth
from ..streaming import MDAG, matrix_stream, row_tiles, vector_stream
from ..telemetry.runtime import span as _telemetry_span
from .axpydot import AppResult


def atax_reference(a, x):
    """Ground truth: y = A^T A x.  A is M x N, x and y have length N."""
    tmp = a @ x
    return a.T @ tmp


def atax_host(fb: Fblas, a, x) -> AppResult:
    """Two GEMV host calls with the intermediate vector in DRAM."""
    m, n = a.data.shape
    start = len(fb.records)
    io_before = fb.context.mem.total_elements_moved
    tmp = fb.allocate(m, dtype=a.data.dtype)
    y = fb.allocate(n, dtype=a.data.dtype)
    fb.gemv(1.0, a, x, 0.0, tmp)
    yv = fb.gemv(1.0, a, tmp, 0.0, y, trans=True)
    recs = fb.records[start:]
    io = (fb.context.mem.total_elements_moved - io_before
          if fb.mode == "simulate" else sum(rr.io_elements for rr in recs))
    return AppResult(yv, sum(rr.cycles for rr in recs), io,
                     sum(rr.seconds for rr in recs))


def atax_streaming(ctx: FblasContext, a, x, tile: int = 4, width: int = 4,
                   channel_depth="auto", preflight: bool = False,
                   mode: str = "event") -> AppResult:
    """Fully streamed ATAX — valid only with an adequately sized channel.

    ``channel_depth`` is the depth of the second GEMV's A channel:
    ``"auto"`` applies the Sec. V-B bound (a full row of tiles); an
    integer forces a specific depth, and an undersized one makes the
    composition deadlock (the simulator raises
    :class:`repro.fpga.engine.DeadlockError`).  With ``preflight=True``
    the static analyzer proves that outcome before cycle 0 instead
    (:class:`repro.analysis.AnalysisError`, diagnostic FB003): every
    kernel below declares its ports, and the first GEMV declares its
    reordering window (it consumes a full row of tiles of A before its
    first output block).
    """
    with _telemetry_span("app.atax", cat="app", m=a.data.shape[0],
                         n=a.data.shape[1], tile=tile, width=width,
                         mode=mode):
        return _atax_streaming(ctx, a, x, tile, width, channel_depth,
                               preflight, mode)


def _atax_streaming(ctx, a, x, tile, width, channel_depth, preflight,
                    mode) -> AppResult:
    m, n = a.data.shape
    dtype = a.data.dtype.type
    precision = "single" if a.data.dtype == np.float32 else "double"
    tm_ = tile if m % tile == 0 else m           # tile rows of A
    tn_ = tile if n % tile == 0 else n           # tile cols of A
    sched = row_tiles(m, n, tm_, tn_)
    if channel_depth == "auto":
        channel_depth = atax_min_channel_depth(n, tm_) + 8 * width
    io_before = ctx.mem.total_elements_moved
    eng = Engine(memory=ctx.mem, mode=mode)
    ca = eng.channel("A", 8 * width)
    ca1 = eng.channel("A1", max(8 * width, 4 * max(tm_, tn_)))
    ca2 = eng.channel("A2", channel_depth)
    cx = eng.channel("x", 8 * width)
    cy0a = eng.channel("zeros1", 8 * width)
    cy0b = eng.channel("zeros2", 8 * width)
    ctmp = eng.channel("tmp", max(8 * width, 2 * tm_))
    cy = eng.channel("y", 8 * width)
    y = ctx.mem.allocate("atax_y", n, dtype=a.data.dtype)
    z1 = ctx.mem.bind("atax_z1", np.zeros(m, dtype=a.data.dtype))
    z2 = ctx.mem.bind("atax_z2", np.zeros(n, dtype=a.data.dtype))
    eng.add_kernel("read_A", read_kernel(ctx.mem, a, ca, width,
                                         order=sched.indices()),
                   writes=[(ca, width, 1)])
    eng.add_kernel("fanout", duplicate_kernel(ca, (ca1, ca2), m * n, width),
                   reads=(ca,), writes=[(ca1, width, 1), (ca2, width, 1)])
    eng.add_kernel("read_x", read_kernel(ctx.mem, x, cx, width,
                                         repeat=m // tm_),
                   writes=[(cx, width, 1)])
    eng.add_kernel("read_z1", read_kernel(ctx.mem, z1, cy0a, width),
                   writes=[(cy0a, width, 1)])
    eng.add_kernel("read_z2", read_kernel(ctx.mem, z2, cy0b, width),
                   writes=[(cy0b, width, 1)])
    lat = level1_latency("map_reduce", width, precision)
    eng.add_kernel("gemv", level2.gemv_row_tiles(
        m, n, 1.0, 0.0, ca1, cx, cy0a, ctmp, tm_, tn_, width, dtype),
        latency=lat, reads=(ca1, cx, cy0a), writes=[(ctmp, width)],
        defer=atax_min_channel_depth(n, tm_))
    eng.add_kernel("gemvT", level2.gemv_transposed_row_tiles(
        m, n, 1.0, 0.0, ca2, ctmp, cy0b, cy, tm_, tn_, width, dtype),
        latency=lat, reads=(ca2, ctmp, cy0b), writes=[(cy, width)])
    eng.add_kernel("write_y", write_kernel(ctx.mem, y, cy, n, width),
                   reads=(cy,))
    report = eng.run(preflight=preflight)
    io = ctx.mem.total_elements_moved - io_before
    freq = ctx.frequency_for("level2", precision)
    return AppResult(np.array(y.data), report.cycles, io,
                     report.cycles / freq,
                     kernel_steps=report.kernel_steps)


def atax_broken(ctx: FblasContext, a, x, tile: int = 4,
                width: int = 4) -> AppResult:
    """ATAX with the MDAG broken in two: each GEMV reads A itself.

    Same I/O volume as the non-streamed version (A read twice), but the
    two matrix-vector pipelines still overlap through the on-chip
    intermediate-vector channel (Sec. V-B's remedy b).
    """
    m, n = a.data.shape
    dtype = a.data.dtype.type
    precision = "single" if a.data.dtype == np.float32 else "double"
    tm_ = tile if m % tile == 0 else m
    tn_ = tile if n % tile == 0 else n
    sched = row_tiles(m, n, tm_, tn_)
    io_before = ctx.mem.total_elements_moved
    eng = Engine(memory=ctx.mem)
    ca1 = eng.channel("A1", 8 * width)
    ca2 = eng.channel("A2", 8 * width)
    cx = eng.channel("x", 8 * width)
    cy0a = eng.channel("zeros1", 8 * width)
    cy0b = eng.channel("zeros2", 8 * width)
    ctmp = eng.channel("tmp", max(8 * width, 2 * tm_))
    cy = eng.channel("y", 8 * width)
    y = ctx.mem.allocate("atax_b_y", n, dtype=a.data.dtype)
    z1 = ctx.mem.bind("atax_b_z1", np.zeros(m, dtype=a.data.dtype))
    z2 = ctx.mem.bind("atax_b_z2", np.zeros(n, dtype=a.data.dtype))
    eng.add_kernel("read_A1", read_kernel(ctx.mem, a, ca1, width,
                                          order=sched.indices()),
                   writes=[(ca1, width, 1)])
    eng.add_kernel("read_A2", read_kernel(ctx.mem, a, ca2, width,
                                          order=sched.indices()),
                   writes=[(ca2, width, 1)])
    eng.add_kernel("read_x", read_kernel(ctx.mem, x, cx, width,
                                         repeat=m // tm_),
                   writes=[(cx, width, 1)])
    eng.add_kernel("read_z1", read_kernel(ctx.mem, z1, cy0a, width),
                   writes=[(cy0a, width, 1)])
    eng.add_kernel("read_z2", read_kernel(ctx.mem, z2, cy0b, width),
                   writes=[(cy0b, width, 1)])
    lat = level1_latency("map_reduce", width, precision)
    eng.add_kernel("gemv", level2.gemv_row_tiles(
        m, n, 1.0, 0.0, ca1, cx, cy0a, ctmp, tm_, tn_, width, dtype),
        latency=lat, reads=(ca1, cx, cy0a), writes=[(ctmp, width)],
        defer=atax_min_channel_depth(n, tm_))
    eng.add_kernel("gemvT", level2.gemv_transposed_row_tiles(
        m, n, 1.0, 0.0, ca2, ctmp, cy0b, cy, tm_, tn_, width, dtype),
        latency=lat, reads=(ca2, ctmp, cy0b), writes=[(cy, width)])
    eng.add_kernel("write_y", write_kernel(ctx.mem, y, cy, n, width),
                   reads=(cy,))
    report = eng.run()
    io = ctx.mem.total_elements_moved - io_before
    freq = ctx.frequency_for("level2", precision)
    return AppResult(np.array(y.data), report.cycles, io,
                     report.cycles / freq)


def atax_mdag(m: int, n: int, tm: int, tn: int) -> MDAG:
    """The Fig. 8 MDAG — statically invalid (reconvergent paths)."""
    g = MDAG()
    g.add_interface("read_A")
    g.add_interface("read_x")
    g.add_module("gemv")
    g.add_module("gemvT")
    g.add_interface("write_y")
    asig = matrix_stream(row_tiles(m, n, tm, tn))
    g.connect("read_A", "gemv", asig, asig)
    g.connect("read_A", "gemvT", asig, asig)
    xsig = vector_stream(n, replay=m // tm)
    g.connect("read_x", "gemv", xsig, xsig)
    g.connect("gemv", "gemvT", vector_stream(m), vector_stream(m))
    g.connect("gemvT", "write_y", vector_stream(n), vector_stream(n))
    return g
