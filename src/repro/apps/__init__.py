"""Composed applications of Sec. V: AXPYDOT, BICG, ATAX, GEMVER."""

from .axpydot import (
    AppResult,
    axpydot_host,
    axpydot_mdag,
    axpydot_reference,
    axpydot_streaming,
)
from .atax import (
    atax_broken,
    atax_host,
    atax_mdag,
    atax_reference,
    atax_streaming,
)
from .bicg import bicg_host, bicg_mdag, bicg_reference, bicg_streaming
from .gemver import (
    gemver_component1_mdag,
    gemver_full_streaming_mdag,
    gemver_host,
    gemver_reference,
    gemver_streaming,
)

__all__ = [
    "AppResult", "atax_broken", "atax_host", "atax_mdag", "atax_reference",
    "atax_streaming", "axpydot_host", "axpydot_mdag", "axpydot_reference",
    "axpydot_streaming", "bicg_host", "bicg_mdag", "bicg_reference",
    "bicg_streaming", "gemver_component1_mdag", "gemver_full_streaming_mdag",
    "gemver_host", "gemver_reference", "gemver_streaming",
]
