"""The FBLAS host API (Sec. II-B).

:class:`Fblas` exposes library calls matching classical BLAS in signature
and behaviour, executed on the simulated FPGA.  Calls are synchronous by
default; passing ``async_=True`` returns a :class:`Handle` immediately
(the paper's asynchronous flavour) which materializes on ``wait()`` or at
:meth:`Fblas.finish`.

Precision is carried by the device buffers (float32 = s-routines, float64
= d-routines); classic prefixed names (``sdot``, ``dgemv``, ``isamax``,
...) are provided as checked aliases.

Two execution modes:

``simulate``
    Every call builds a full streaming design — DRAM interface kernels,
    the routine module, write-back — and runs it cycle by cycle.  Exact
    but meant for moderate sizes.
``model``
    Results come from the numpy reference; cycles and I/O come from the
    Sec. IV/V closed forms (which the tests validate against the
    simulator).  This is how the paper-scale benchmark tables are
    produced.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..fpga.device import STRATIX10, FpgaDevice
from ..fpga.engine import Engine
from ..plan import PlanCache
from ..telemetry.ledger import run_scope
from ..telemetry.runtime import active as _telemetry_active
from ._l1 import Level1Mixin
from ._l2 import Level2Mixin
from ._l3 import Level3Mixin
from .context import FblasContext

_PREFIXED = {
    "s": np.float32, "d": np.float64,
}

#: Routines reachable through BLAS-prefixed aliases.
_ALIASABLE = {
    "scal", "copy", "axpy", "swap", "rot", "rotm", "dot", "nrm2", "asum",
    "gemv", "ger", "syr", "syr2", "trsv", "gemm", "syrk", "syr2k", "trsm",
    "rotg", "rotmg",
}


class Handle:
    """Deferred result of an asynchronous call."""

    def __init__(self, thunk: Callable):
        self._thunk = thunk
        self._done = False
        self._value = None

    def wait(self):
        """Block until the call completes; returns the result."""
        if not self._done:
            self._value = self._thunk()
            self._done = True
        return self._value

    def result(self):
        return self.wait()

    @property
    def done(self) -> bool:
        return self._done


class Fblas(Level1Mixin, Level2Mixin, Level3Mixin):
    """FBLAS library instance bound to one device context."""

    def __init__(self, context: Optional[FblasContext] = None,
                 device: FpgaDevice = STRATIX10, mode: str = "simulate",
                 width: Optional[int] = None, tile: Optional[int] = None,
                 systolic_rows: int = 4, systolic_cols: int = 4,
                 channel_depth: int = 256, preflight: bool = False,
                 engine_mode: str = "event", resilience=None,
                 plan_cache: Optional[PlanCache] = None,
                 schedule_cache: Optional[PlanCache] = None,
                 **context_kwargs):
        if mode not in ("simulate", "model"):
            raise ValueError(f"mode must be simulate/model, got {mode!r}")
        self.context = context or FblasContext(device=device,
                                               **context_kwargs)
        self.mode = mode
        self.width = width or self.context.default_width
        self.tile = tile or self.context.default_tile
        if systolic_rows < 1 or systolic_cols < 1:
            raise ValueError("systolic grid must be positive")
        self.systolic_rows = systolic_rows
        self.systolic_cols = systolic_cols
        self.channel_depth = channel_depth
        #: Run the static analyzer (:mod:`repro.analysis`) on every built
        #: design before simulating it; errors raise
        #: :class:`~repro.analysis.AnalysisError` instead of stalling.
        self.preflight = preflight
        #: Engine core used for ``simulate`` calls: ``"event"`` (wake-list
        #: scheduler, the default), ``"dense"`` (reference cycle loop),
        #: ``"bulk"`` (event core plus the steady-state superstep fast
        #: path of :mod:`repro.fpga.bulk` — byte-identical results,
        #: fast-forwarded steady pipeline phases) or ``"certified"``
        #: (fully static: the FB4xx rate analysis must certify the design
        #: up front, after which steady windows replay with no runtime
        #: probing; raises :class:`~repro.analysis.AnalysisError` for
        #: non-certifiable designs).
        self.engine_mode = engine_mode
        #: Certified static schedules memoized on the structural
        #: ``plan_key`` (device identity included) — rebuilding the same
        #: composition for a new problem instance reuses the certificate
        #: instead of re-running the rate passes.  A counting
        #: :class:`repro.plan.PlanCache`, so hit rates are observable
        #: (and, under a telemetry session, exported as the labelled
        #: ``plan_cache.requests`` counter).
        #: Both caches accept externally-owned instances so a service
        #: layer can share one compiled-plan cache across its whole
        #: worker fleet (every worker's repeat plans hit the same
        #: entries).
        self._schedule_cache: PlanCache = (
            schedule_cache if schedule_cache is not None
            else PlanCache(name="host.schedule"))
        #: Compiled :class:`repro.plan.PlanIR` artifacts memoized on a
        #: structural MDAG fingerprint: repeat ``simulate`` requests of
        #: the same composition shape skip MDAG validation, scheduling
        #: and pattern derivation entirely.
        self.plan_cache: PlanCache = (
            plan_cache if plan_cache is not None
            else PlanCache(name="host.plan"))
        #: Recovery ladder for ``simulate`` calls: ``None`` disables it,
        #: ``True`` uses the default :class:`repro.faults.RetryPolicy`,
        #: or pass a policy instance.  When set, every call runs under
        #: :func:`repro.faults.run_with_recovery`: device memory is
        #: checkpointed before the attempt, transient faults retry from
        #: the checkpoint, and watchdog trips demote the engine tier
        #: (bulk -> event -> dense) for the re-attempt.
        if resilience is True:
            from ..faults.recovery import RetryPolicy
            resilience = RetryPolicy()
        self.resilience = resilience
        #: :class:`repro.faults.RecoveryOutcome` of the most recent call
        #: that ran under the recovery ladder (None before any).
        self.last_recovery = None
        self._pending: List[Handle] = []

    def _engine(self) -> Engine:
        """A fresh simulation engine bound to this context's memory."""
        return Engine(memory=self.context.mem, preflight=self.preflight,
                      mode=self.engine_mode,
                      schedule_cache=self._schedule_cache)

    # -- convenience passthroughs ------------------------------------------------
    def copy_to_device(self, array, name=None, bank=None):
        return self.context.copy_to_device(array, name, bank)

    def copy_from_device(self, buf):
        return self.context.copy_from_device(buf)

    def allocate(self, shape, dtype=np.float32, name=None, bank=None):
        return self.context.allocate(shape, dtype, name, bank)

    @property
    def records(self):
        return self.context.records

    # -- async plumbing ---------------------------------------------------------
    def _run_recorded(self, thunk: Callable):
        """Run one routine thunk under a telemetry root span (if active).

        The routine name is only known *after* the thunk runs (it appends
        a :class:`~repro.host.context.CallRecord`), so the span opens
        generically and is renamed from the records it produced.

        Each instrumented call is also one **ledger request**: it mints
        the root ``run_id`` (stamped into the span, hence the Chrome
        trace), correlates everything the call spawns — engine runs,
        hang forensics, recovery outcomes — under that id, and appends a
        ``host.call`` :class:`~repro.telemetry.ledger.RunRecord` with
        the plan/certificate cache deltas, the recovery summary and the
        rolled-up certified cycle band.
        """
        runner = thunk
        if self.resilience is not None and self.mode == "simulate":
            runner = lambda: self._run_resilient(thunk)  # noqa: E731
        tel = _telemetry_active()
        if tel is None:
            return runner()
        recs = self.context.records
        before = len(recs)
        prior_recovery = self.last_recovery
        pc0 = self.plan_cache.stats()
        sc0 = self._schedule_cache.stats()
        with tel.span("host.call", cat="host") as sp, \
                run_scope(tel.ledger, "host.call",
                          engine_mode=self.engine_mode) as lrec:
            sp.args["run_id"] = lrec.run_id
            out = runner()
            new = recs[before:]
            if new:
                sp.name = f"host.{new[-1].routine}"
                sp.args["routine"] = new[-1].routine
                sp.args["precision"] = new[-1].precision
                sp.args["cycles"] = sum(r.cycles for r in new)
                lrec.label = new[-1].routine
                lrec.cycles = sum(r.cycles for r in new)
            pc1 = self.plan_cache.stats()
            sc1 = self._schedule_cache.stats()
            lrec.plan_cache = {"hits": pc1["hits"] - pc0["hits"],
                               "misses": pc1["misses"] - pc0["misses"]}
            lrec.schedule_cache = {"hits": sc1["hits"] - sc0["hits"],
                                   "misses": sc1["misses"] - sc0["misses"]}
            if self.last_recovery is not prior_recovery:
                outcome = self.last_recovery
                lrec.recovery = outcome.to_dict()
                lrec.retries = outcome.retries
                lrec.demotions = outcome.demotions
                lrec.engine_mode = outcome.mode
            return out

    def _run_resilient(self, thunk: Callable):
        """Run one routine thunk under the recovery ladder.

        The thunk rebuilds its streaming design on every invocation (the
        mixins construct kernels inside the closure), so re-attempts are
        safe; device memory is restored from a pre-call checkpoint before
        each re-attempt so partial writes of a failed run cannot leak.
        Demotion temporarily lowers :attr:`engine_mode` for the re-run.
        """
        from ..faults.recovery import MemoryCheckpoint, run_with_recovery
        ckpt = MemoryCheckpoint.capture(self.context.mem)
        saved_mode = self.engine_mode

        def attempt(mode):
            self.engine_mode = mode
            try:
                return thunk()
            finally:
                self.engine_mode = saved_mode

        out = run_with_recovery(
            attempt, policy=self.resilience, mode=saved_mode,
            restore=ckpt.restore if ckpt is not None else None)
        self.last_recovery = out
        return out.result

    def _execute(self, thunk: Callable, async_: bool):
        if not async_:
            return self._run_recorded(thunk)
        handle = Handle(lambda: self._run_recorded(thunk))
        self._pending.append(handle)
        return handle

    def finish(self) -> None:
        """Complete every outstanding asynchronous call, in issue order."""
        for handle in self._pending:
            handle.wait()
        self._pending.clear()

    # -- generated-routine invocation -------------------------------------------
    def invoke(self, routine, *args, async_=False, **kwargs):
        """Call a code-generator routine through the host API.

        ``routine`` is a :class:`repro.codegen.GeneratedRoutine` (or a
        bare :class:`RoutineSpec`); the call runs with the routine's
        specialized non-functional parameters — vectorization width, tile
        sizes, functional flags — instead of this instance's defaults,
        mirroring how FBLAS host programs call the kernels their
        specification file produced.  Positional/keyword arguments follow
        the corresponding named method (e.g. ``invoke(gen_dot, x, y)``).
        """
        spec = getattr(routine, "spec", routine)
        for arg in args:
            if hasattr(arg, "data") and hasattr(arg.data, "dtype"):
                want = (np.float32 if spec.precision == "single"
                        else np.float64)
                self._check_dtype(spec.user_name, want, arg)
        method = getattr(self, spec.blas_name)
        if spec.blas_name == "gemv":
            kwargs.setdefault("trans", spec.transposed)
        elif spec.blas_name in ("trsv", "trsm"):
            kwargs.setdefault("lower", spec.lower)
            kwargs.setdefault("unit_diag", spec.unit_diag)
        saved_width, saved_tile = self.width, self.tile
        self.width = spec.width
        if spec.tiled:
            self.tile = max(spec.tile_n_size, spec.tile_m_size)
        try:
            if spec.blas_name in ("rotg", "rotmg"):
                dtype = (np.float32 if spec.precision == "single"
                         else np.float64)
                return method(*args, dtype=dtype, **kwargs)
            return method(*args, async_=async_, **kwargs)
        finally:
            self.width, self.tile = saved_width, saved_tile

    # -- prefixed BLAS aliases ----------------------------------------------------
    def __getattr__(self, name: str):
        # isamax/idamax
        if name in ("isamax", "idamax"):
            want = _PREFIXED[name[1]]
            def checked_iamax(x, **kw):
                self._check_dtype(name, want, x)
                return self.iamax(x, **kw)
            return checked_iamax
        if name == "sdsdot":
            raise AttributeError(name)  # defined concretely on the mixin
        if len(name) > 1 and name[0] in _PREFIXED and name[1:] in _ALIASABLE:
            base = name[1:]
            want = _PREFIXED[name[0]]
            method = getattr(self, base)

            def checked(*args, **kwargs):
                for arg in args:
                    if hasattr(arg, "data") and hasattr(arg.data, "dtype"):
                        self._check_dtype(name, want, arg)
                if base in ("rotg", "rotmg"):
                    kwargs.setdefault("dtype", want)
                return method(*args, **kwargs)

            checked.__name__ = name
            return checked
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    @staticmethod
    def _check_dtype(name, want, buf):
        if buf.data.dtype != want:
            raise TypeError(
                f"{name} requires {np.dtype(want).name} buffers, got "
                f"{buf.data.dtype.name} ({buf.name!r})")

    # -- shared helpers used by the mixins -----------------------------------------
    def _precision(self, buf) -> str:
        return "single" if buf.data.dtype == np.float32 else "double"

    def _frequency(self, routine_class: str, dtype) -> float:
        precision = "single" if np.dtype(dtype) == np.float32 else "double"
        return self.context.frequency_for(routine_class, precision)

    def _same_length(self, x, y) -> int:
        if x.num_elements != y.num_elements:
            raise ValueError(
                f"vector length mismatch: {x.num_elements} vs "
                f"{y.num_elements}")
        if x.data.dtype != y.data.dtype:
            raise TypeError(
                f"mixed precision: {x.data.dtype} vs {y.data.dtype}")
        return x.num_elements

    def _fit_tile(self, n: int, multiple_of: int = 1) -> int:
        """Largest divisor of n that is <= the default tile and a multiple
        of ``multiple_of`` (streaming kernels need exact tiling)."""
        if n % multiple_of:
            raise ValueError(
                f"dimension {n} is not a multiple of the compute grid "
                f"({multiple_of})")
        best = multiple_of
        limit = max(self.tile, multiple_of)
        for d in range(multiple_of, n + 1, multiple_of):
            if n % d == 0 and d <= limit:
                best = d
        return best
