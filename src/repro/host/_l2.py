"""Level-2 host calls (mixin for :class:`repro.host.api.Fblas`)."""

from __future__ import annotations

from ..blas import level2, reference
from ..fpga.memory import read_kernel, write_kernel
from ..fpga.resources import level1_latency
from ..models import iomodel
from ..models.performance import gemv_cycles, routine_flops
from ..streaming.tiling import row_tiles
from . import orders
from .context import CallRecord


class Level2Mixin:
    """BLAS Level-2 routines over device buffers."""

    def gemv(self, alpha, a, x, beta, y, trans=False, scheme="rows",
             async_=False):
        """y <- alpha*op(A)*x + beta*y.

        ``scheme`` picks the streaming specialization (Sec. III-B):
        ``"rows"`` streams A in tiles by rows (y reused on chip, x
        replayed from DRAM — I/O NM + MN/T_N + 2N); ``"cols"`` streams A
        in tiles by columns (x reused, the partial y replayed through a
        feedback loop — I/O NM + M + 2NM/T_M).  Transposed GEMV currently
        uses the rows scheme.
        """
        n, m = a.data.shape
        xlen, ylen = (n, m) if trans else (m, n)
        if x.num_elements != xlen or y.num_elements != ylen:
            raise ValueError(
                f"gemv shape mismatch: A {a.data.shape}, x {x.num_elements}, "
                f"y {y.num_elements}, trans={trans}")
        if scheme not in ("rows", "cols"):
            raise ValueError(f"scheme must be rows/cols, got {scheme!r}")
        if scheme == "cols" and trans:
            raise ValueError("the cols scheme is not available transposed")
        if scheme == "cols":
            return self._execute(
                lambda: self._gemv_cols_impl(alpha, a, x, beta, y), async_)
        return self._execute(
            lambda: self._gemv_impl(alpha, a, x, beta, y, trans), async_)

    def _gemv_cols_impl(self, alpha, a, x, beta, y):
        from ..models.performance import gemv_cycles as _gc
        from ..streaming.tiling import col_tiles
        n, m = a.data.shape
        precision = self._precision(a)
        freq = self._frequency("level2", a.data.dtype)
        tn = self._fit_tile(n)
        tm = self._fit_tile(m)
        if self.mode == "model":
            result = reference.gemv(alpha, a.data, x.data.reshape(-1),
                                    beta, y.data.reshape(-1))
            y.data.reshape(-1)[:] = result
            self.context.record(CallRecord(
                "gemv", precision, _gc(n, m, self.width), freq,
                iomodel.gemv_io_tiles_by_cols(n, m, tm),
                routine_flops("gemv", n, m), "model"))
            return self.context.copy_from_device(y)

        io_before = self.context.mem.total_elements_moved
        sched = col_tiles(n, m, tn, tm)
        passes = m // tm
        eng = self._engine()
        ca = eng.channel("A", self.channel_depth)
        cx = eng.channel("x", self.channel_depth)
        cy = eng.channel("y", max(self.channel_depth, 2 * n))
        co = eng.channel("partial", self.channel_depth)
        cfinal = eng.channel("out", self.channel_depth)
        dt = a.data.dtype.type
        eng.add_kernel("read_a", read_kernel(
            self.context.mem, a, ca, self.width, order=sched.indices()))
        eng.add_kernel("read_x", read_kernel(
            self.context.mem, x, cx, self.width))
        eng.add_kernel("read_y", read_kernel(
            self.context.mem, y, cy, self.width))
        eng.add_kernel("gemv", level2.gemv_col_tiles(
            n, m, alpha, beta, ca, cx, cy, co, tn, tm, self.width, dt),
            latency=level1_latency("map_reduce", self.width, precision))
        eng.add_kernel("router", level2.y_replay_router(
            n, passes, co, cy, cfinal, self.width))
        eng.add_kernel("write_y", write_kernel(
            self.context.mem, y, cfinal, n, self.width))
        report = eng.run()
        # The feedback loop stands in for the DRAM replay of y; charge the
        # I/O the paper's scheme pays: each non-final pass writes and
        # re-reads the N partials.
        replay_io = 2 * n * (passes - 1)
        io = (self.context.mem.total_elements_moved - io_before
              + replay_io)
        self.context.record(CallRecord(
            "gemv", precision, report.cycles, freq, io,
            routine_flops("gemv", n, m), "simulate"))
        return self.context.copy_from_device(y)

    def _gemv_impl(self, alpha, a, x, beta, y, trans):
        n, m = a.data.shape
        precision = self._precision(a)
        freq = self._frequency("level2", a.data.dtype)
        tn = self._fit_tile(n)
        tm = self._fit_tile(m)
        if self.mode == "model":
            result = reference.gemv(alpha, a.data, x.data.reshape(-1),
                                    beta, y.data.reshape(-1), trans=trans)
            y.data.reshape(-1)[:] = result
            cycles = gemv_cycles(n, m, self.width)
            io = iomodel.gemv_io_tiles_by_rows(n, m, tn)
            self.context.record(CallRecord(
                "gemv", precision, cycles, freq, io,
                routine_flops("gemv", n, m), "model"))
            return self.context.copy_from_device(y)

        io_before = self.context.mem.total_elements_moved
        sched = row_tiles(n, m, tn, tm)
        eng = self._engine()
        ca = eng.channel("A", self.channel_depth)
        cx = eng.channel("x", self.channel_depth)
        cy = eng.channel("y", self.channel_depth)
        co = eng.channel("out", self.channel_depth)
        eng.add_kernel("read_a", read_kernel(
            self.context.mem, a, ca, self.width, order=sched.indices()))
        dt = a.data.dtype.type
        latency = level1_latency("map_reduce", self.width, precision)
        if not trans:
            eng.add_kernel("read_x", read_kernel(
                self.context.mem, x, cx, self.width, repeat=n // tn))
            eng.add_kernel("read_y", read_kernel(
                self.context.mem, y, cy, self.width))
            eng.add_kernel("gemv", level2.gemv_row_tiles(
                n, m, alpha, beta, ca, cx, cy, co, tn, tm, self.width, dt),
                latency=latency)
            out_len = n
        else:
            eng.add_kernel("read_x", read_kernel(
                self.context.mem, x, cx, self.width))
            eng.add_kernel("read_y", read_kernel(
                self.context.mem, y, cy, self.width))
            eng.add_kernel("gemv", level2.gemv_transposed_row_tiles(
                n, m, alpha, beta, ca, cx, cy, co, tn, tm, self.width, dt),
                latency=latency)
            out_len = m
        eng.add_kernel("write_y", write_kernel(
            self.context.mem, y, co, out_len, self.width))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            "gemv", precision, report.cycles, freq, io,
            routine_flops("gemv", n, m), "simulate"))
        return self.context.copy_from_device(y)

    def ger(self, alpha, x, y, a, async_=False):
        """A <- A + alpha * x y^T."""
        n, m = a.data.shape
        if x.num_elements != n or y.num_elements != m:
            raise ValueError("ger shape mismatch")
        return self._execute(lambda: self._ger_impl(alpha, x, y, a), async_)

    def _ger_impl(self, alpha, x, y, a):
        n, m = a.data.shape
        precision = self._precision(a)
        freq = self._frequency("level2", a.data.dtype)
        tn = self._fit_tile(n)
        tm = self._fit_tile(m)
        if self.mode == "model":
            a.data[:, :] = reference.ger(alpha, x.data.reshape(-1),
                                         y.data.reshape(-1), a.data)
            self.context.record(CallRecord(
                "ger", precision, gemv_cycles(n, m, self.width), freq,
                2 * n * m + n + m * math.ceil(n / tn),
                routine_flops("ger", n, m), "model"))
            return self.context.copy_from_device(a)

        io_before = self.context.mem.total_elements_moved
        sched = row_tiles(n, m, tn, tm)
        eng = self._engine()
        ca = eng.channel("A", self.channel_depth)
        cx = eng.channel("x", self.channel_depth)
        cy = eng.channel("y", self.channel_depth)
        co = eng.channel("out", self.channel_depth)
        eng.add_kernel("read_a", read_kernel(
            self.context.mem, a, ca, self.width, order=sched.indices()))
        eng.add_kernel("read_x", read_kernel(
            self.context.mem, x, cx, self.width))
        eng.add_kernel("read_y", read_kernel(
            self.context.mem, y, cy, self.width, repeat=n // tn))
        eng.add_kernel("ger", level2.ger_kernel(
            n, m, alpha, ca, cx, cy, co, tn, tm, self.width,
            a.data.dtype.type),
            latency=level1_latency("map", self.width, precision))
        eng.add_kernel("write_a", write_kernel(
            self.context.mem, a, co, n * m, self.width,
            order=sched.indices()))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            "ger", precision, report.cycles, freq, io,
            routine_flops("ger", n, m), "simulate"))
        return self.context.copy_from_device(a)

    def syr(self, alpha, x, a, async_=False):
        """A <- A + alpha * x x^T."""
        n = x.num_elements
        if a.data.shape != (n, n):
            raise ValueError("syr shape mismatch")
        return self._execute(lambda: self._syr_impl(alpha, x, a), async_)

    def _syr_impl(self, alpha, x, a):
        n = x.num_elements
        precision = self._precision(a)
        freq = self._frequency("level2", a.data.dtype)
        tn = self._fit_tile(n)
        if self.mode == "model":
            a.data[:, :] = reference.syr(alpha, x.data.reshape(-1), a.data)
            self.context.record(CallRecord(
                "syr", precision, gemv_cycles(n, n, self.width), freq,
                2 * n * n + n + n * math.ceil(n / tn),
                routine_flops("syr", n), "model"))
            return self.context.copy_from_device(a)

        io_before = self.context.mem.total_elements_moved
        sched = row_tiles(n, n, tn, tn)
        eng = self._engine()
        ca = eng.channel("A", self.channel_depth)
        cxr = eng.channel("xr", self.channel_depth)
        cxc = eng.channel("xc", self.channel_depth)
        co = eng.channel("out", self.channel_depth)
        eng.add_kernel("read_a", read_kernel(
            self.context.mem, a, ca, self.width, order=sched.indices()))
        eng.add_kernel("read_xr", read_kernel(
            self.context.mem, x, cxr, self.width))
        eng.add_kernel("read_xc", read_kernel(
            self.context.mem, x, cxc, self.width, repeat=n // tn))
        eng.add_kernel("syr", level2.syr_kernel(
            n, alpha, ca, cxr, cxc, co, tn, tn, self.width,
            a.data.dtype.type),
            latency=level1_latency("map", self.width, precision))
        eng.add_kernel("write_a", write_kernel(
            self.context.mem, a, co, n * n, self.width,
            order=sched.indices()))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            "syr", precision, report.cycles, freq, io,
            routine_flops("syr", n), "simulate"))
        return self.context.copy_from_device(a)

    def syr2(self, alpha, x, y, a, async_=False):
        """A <- A + alpha * (x y^T + y x^T)."""
        n = x.num_elements
        if a.data.shape != (n, n) or y.num_elements != n:
            raise ValueError("syr2 shape mismatch")
        return self._execute(lambda: self._syr2_impl(alpha, x, y, a), async_)

    def _syr2_impl(self, alpha, x, y, a):
        n = x.num_elements
        precision = self._precision(a)
        freq = self._frequency("level2", a.data.dtype)
        tn = self._fit_tile(n)
        if self.mode == "model":
            a.data[:, :] = reference.syr2(alpha, x.data.reshape(-1),
                                          y.data.reshape(-1), a.data)
            self.context.record(CallRecord(
                "syr2", precision, gemv_cycles(n, n, self.width), freq,
                2 * n * n + 2 * n + 2 * n * math.ceil(n / tn),
                routine_flops("syr2", n), "model"))
            return self.context.copy_from_device(a)

        io_before = self.context.mem.total_elements_moved
        sched = row_tiles(n, n, tn, tn)
        eng = self._engine()
        ca = eng.channel("A", self.channel_depth)
        cxr = eng.channel("xr", self.channel_depth)
        cyc = eng.channel("yc", self.channel_depth)
        cyr = eng.channel("yr", self.channel_depth)
        cxc = eng.channel("xc", self.channel_depth)
        co = eng.channel("out", self.channel_depth)
        replay = n // tn
        eng.add_kernel("read_a", read_kernel(
            self.context.mem, a, ca, self.width, order=sched.indices()))
        eng.add_kernel("read_xr", read_kernel(
            self.context.mem, x, cxr, self.width))
        eng.add_kernel("read_yc", read_kernel(
            self.context.mem, y, cyc, self.width, repeat=replay))
        eng.add_kernel("read_yr", read_kernel(
            self.context.mem, y, cyr, self.width))
        eng.add_kernel("read_xc", read_kernel(
            self.context.mem, x, cxc, self.width, repeat=replay))
        eng.add_kernel("syr2", level2.syr2_kernel(
            n, alpha, ca, cxr, cyc, cyr, cxc, co, tn, tn, self.width,
            a.data.dtype.type),
            latency=level1_latency("map", self.width, precision))
        eng.add_kernel("write_a", write_kernel(
            self.context.mem, a, co, n * n, self.width,
            order=sched.indices()))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            "syr2", precision, report.cycles, freq, io,
            routine_flops("syr2", n), "simulate"))
        return self.context.copy_from_device(a)

    def trsv(self, a, b, lower=True, unit_diag=False, async_=False):
        """Solve A x = b in place of b (triangular A, generic storage)."""
        n = b.num_elements
        if a.data.shape != (n, n):
            raise ValueError("trsv shape mismatch")
        return self._execute(
            lambda: self._trsv_impl(a, b, lower, unit_diag), async_)

    def _trsv_impl(self, a, b, lower, unit_diag):
        n = b.num_elements
        precision = self._precision(a)
        freq = self._frequency("level2", a.data.dtype)
        if self.mode == "model":
            x = reference.trsv(a.data, b.data.reshape(-1), lower=lower,
                               unit_diag=unit_diag)
            b.data.reshape(-1)[:] = x
            self.context.record(CallRecord(
                "trsv", precision, gemv_cycles(n, n, self.width), freq,
                n * n + 2 * n, routine_flops("trsv", n), "model"))
            return self.context.copy_from_device(b)

        io_before = self.context.mem.total_elements_moved
        row_order = list(orders.trsv_row_order(n, lower))
        solve_order = (list(range(n)) if lower
                       else list(range(n - 1, -1, -1)))
        eng = self._engine()
        ca = eng.channel("A", self.channel_depth)
        cb = eng.channel("b", self.channel_depth)
        co = eng.channel("out", self.channel_depth)
        eng.add_kernel("read_a", read_kernel(
            self.context.mem, a, ca, self.width, order=row_order))
        eng.add_kernel("read_b", read_kernel(
            self.context.mem, b, cb, 1, order=solve_order))
        eng.add_kernel("trsv", level2.trsv_kernel(
            n, ca, cb, co, self.width, a.data.dtype.type, lower, unit_diag),
            latency=level1_latency("map_reduce", self.width, precision))
        eng.add_kernel("write_x", write_kernel(
            self.context.mem, b, co, n, 1, order=solve_order))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            "trsv", precision, report.cycles, freq, io,
            routine_flops("trsv", n), "simulate"))
        return self.context.copy_from_device(b)
