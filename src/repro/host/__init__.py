"""Host API: BLAS-style calls executed on the simulated FPGA."""

from .api import Fblas, Handle
from .context import CallRecord, FblasContext
from . import orders

__all__ = ["CallRecord", "Fblas", "FblasContext", "Handle", "orders"]
