"""Host-side context: device selection, buffers, call records (Sec. II-B).

Following the OpenCL programming flow, the host programmer transfers data
to the device, invokes FBLAS routines on FPGA memory, and copies results
back.  :class:`FblasContext` owns the simulated board — a device from the
Table II catalog and its DRAM — plus the performance models that turn
simulated cycles into wall-clock estimates for the Sec. VI tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..fpga.device import STRATIX10, FpgaDevice, FrequencyModel, PowerModel
from ..fpga.memory import DramBuffer, DramModel


@dataclass
class CallRecord:
    """Accounting for one routine invocation."""

    routine: str
    precision: str
    cycles: int
    frequency: float
    io_elements: int
    flops: int
    mode: str                       # "simulate" or "model"
    power_watts: float = 0.0

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9 if self.cycles else 0.0

    @property
    def energy_joules(self) -> float:
        """Board energy for the call (power model x modeled time)."""
        return self.power_watts * self.seconds


class FblasContext:
    """A simulated FPGA board bound to the host program.

    Parameters
    ----------
    device:
        Board from :data:`repro.fpga.device.DEVICES` (default Stratix 10).
    frequency:
        Clock the designs are assumed to close at; ``None`` uses the
        per-routine-class calibration of :class:`FrequencyModel`.
    interleaving:
        Whether DRAM buffers stripe across banks.  The Stratix BSP of the
        paper has this *disabled*, which is the default here too.
    default_width / default_tile:
        Non-functional parameters applied when a call does not override
        them (Sec. II-C).
    """

    def __init__(self, device: FpgaDevice = STRATIX10,
                 frequency: Optional[float] = None,
                 interleaving: bool = False,
                 default_width: int = 16,
                 default_tile: int = 256):
        if default_width < 1 or default_tile < 1:
            raise ValueError("width and tile defaults must be positive")
        self.device = device
        self.interleaving = interleaving
        self.default_width = default_width
        self.default_tile = default_tile
        self._freq_model = FrequencyModel(device)
        self._power_model = PowerModel(device)
        self._fixed_frequency = frequency
        f = frequency or self._freq_model.estimate("level1")
        self.mem = DramModel(
            num_banks=device.dram_banks,
            bytes_per_cycle=device.bytes_per_cycle(f),
            interleaving=interleaving,
            device=device.name)
        self.records: List[CallRecord] = []
        self._buffer_seq = 0

    # -- data movement --------------------------------------------------------
    def copy_to_device(self, array: np.ndarray, name: Optional[str] = None,
                       bank: Optional[int] = None) -> DramBuffer:
        """Transfer a host array into device DRAM."""
        array = np.asarray(array)
        if array.dtype not in (np.float32, np.float64):
            raise TypeError(
                f"FBLAS buffers are float32/float64, got {array.dtype}")
        if name is None:
            name = f"buf{self._buffer_seq}"
            self._buffer_seq += 1
        return self.mem.bind(name, array, bank)

    def allocate(self, shape, dtype=np.float32, name: Optional[str] = None,
                 bank: Optional[int] = None) -> DramBuffer:
        """Allocate a zeroed device buffer."""
        if name is None:
            name = f"buf{self._buffer_seq}"
            self._buffer_seq += 1
        return self.mem.allocate(name, shape, dtype, bank)

    def copy_from_device(self, buf: DramBuffer) -> np.ndarray:
        """Transfer a device buffer back to the host."""
        return np.array(buf.data, copy=True)

    # -- modelling --------------------------------------------------------------
    def frequency_for(self, routine_class: str, precision: str) -> float:
        if self._fixed_frequency is not None:
            return self._fixed_frequency
        return self._freq_model.estimate(routine_class, precision)

    def record(self, rec: CallRecord) -> CallRecord:
        rec.power_watts = self._power_model.estimate(0.3)
        self.records.append(rec)
        return rec

    @property
    def last_record(self) -> CallRecord:
        if not self.records:
            raise RuntimeError("no routine has been invoked yet")
        return self.records[-1]

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def reset_records(self) -> None:
        self.records.clear()
