"""Level-1 host calls (mixin for :class:`repro.host.api.Fblas`)."""

from __future__ import annotations

from typing import List

import numpy as np

from ..blas import level1, reference
from ..fpga.memory import read_kernel, write_kernel
from ..fpga.resources import level1_latency
from ..fpga.util import sink_kernel
from ..models.performance import level1_cycles, routine_flops
from .context import CallRecord


def _stride_order(n, inc):
    """Flat-index order of n elements at stride inc.

    Always explicit (never None): a logical length n smaller than the
    buffer must bound the interface's stream, or the reader would push
    the buffer's tail into a channel nobody drains.
    """
    return range(0, n * inc, inc)


class Level1Mixin:
    """BLAS Level-1 routines over device buffers."""

    # -- map routines -----------------------------------------------------------
    def scal(self, alpha, x, n=None, incx=1, async_=False):
        """x <- alpha * x (over n elements with stride incx)."""
        n = self._stride_len(x, incx, n)
        order = _stride_order(n, incx)

        def model():
            view = x.data.reshape(-1)[::incx][:n]
            x.data.reshape(-1)[::incx][:n] = reference.scal(alpha, view)
            return None

        return self._execute(lambda: self._map_call(
            "scal", n, [x], [x],
            lambda chans: level1.scal_kernel(
                n, alpha, chans[0], chans[1], self.width, x.data.dtype.type),
            model=model, target=None,
            in_orders=[order], out_orders=[order]) or
            self.context.copy_from_device(x), async_)

    def copy(self, x, y, n=None, incx=1, incy=1, async_=False):
        """y <- x (strided)."""
        n = self._stride_pair(x, y, incx, incy, n)

        def model():
            y.data.reshape(-1)[::incy][:n] = reference.copy(
                x.data.reshape(-1)[::incx][:n])
            return None

        return self._execute(lambda: self._map_call(
            "copy", n, [x], [y],
            lambda chans: level1.copy_kernel(
                n, chans[0], chans[1], self.width, x.data.dtype.type),
            model=model, target=None,
            in_orders=[_stride_order(n, incx)],
            out_orders=[_stride_order(n, incy)]) or
            self.context.copy_from_device(y), async_)

    def axpy(self, alpha, x, y, n=None, incx=1, incy=1, async_=False):
        """y <- alpha*x + y (strided)."""
        n = self._stride_pair(x, y, incx, incy, n)

        def model():
            y.data.reshape(-1)[::incy][:n] = reference.axpy(
                alpha, x.data.reshape(-1)[::incx][:n],
                y.data.reshape(-1)[::incy][:n])
            return None

        return self._execute(lambda: self._map_call(
            "axpy", n, [x, y], [y],
            lambda chans: level1.axpy_kernel(
                n, alpha, chans[0], chans[1], chans[2], self.width,
                x.data.dtype.type),
            model=model, target=None,
            in_orders=[_stride_order(n, incx), _stride_order(n, incy)],
            out_orders=[_stride_order(n, incy)]) or
            self.context.copy_from_device(y), async_)

    def swap(self, x, y, async_=False):
        """x <-> y."""
        n = self._same_length(x, y)

        def model():
            sx, sy = reference.swap(x.data.reshape(-1), y.data.reshape(-1))
            x.data.reshape(-1)[:] = sx
            y.data.reshape(-1)[:] = sy
            return None

        return self._execute(lambda: self._map_call(
            "swap", n, [x, y], [x, y],
            lambda chans: level1.swap_kernel(
                n, chans[0], chans[1], chans[2], chans[3], self.width,
                x.data.dtype.type),
            model=model, target=None), async_)

    def rot(self, x, y, c, s, async_=False):
        """Apply the plane rotation (c, s) to x and y."""
        n = self._same_length(x, y)

        def model():
            rx, ry = reference.rot(x.data.reshape(-1), y.data.reshape(-1),
                                   c, s)
            x.data.reshape(-1)[:] = rx
            y.data.reshape(-1)[:] = ry
            return None

        return self._execute(lambda: self._map_call(
            "rot", n, [x, y], [x, y],
            lambda chans: level1.rot_kernel(
                n, c, s, chans[0], chans[1], chans[2], chans[3],
                self.width, x.data.dtype.type),
            model=model, target=None), async_)

    def rotm(self, x, y, param, async_=False):
        """Apply the modified rotation defined by ``param``."""
        n = self._same_length(x, y)

        def model():
            rx, ry = reference.rotm(x.data.reshape(-1), y.data.reshape(-1),
                                    param)
            x.data.reshape(-1)[:] = rx
            y.data.reshape(-1)[:] = ry
            return None

        return self._execute(lambda: self._map_call(
            "rotm", n, [x, y], [x, y],
            lambda chans: level1.rotm_kernel(
                n, param, chans[0], chans[1], chans[2], chans[3],
                self.width, x.data.dtype.type),
            model=model, target=None), async_)

    # -- reductions -------------------------------------------------------------
    def dot(self, x, y, n=None, incx=1, incy=1, async_=False):
        """Return x^T y (strided)."""
        n = self._stride_pair(x, y, incx, incy, n)
        return self._execute(lambda: self._reduce_call(
            "dot", n, [x, y],
            lambda chans: level1.dot_kernel(
                n, chans[0], chans[1], chans[2], self.width,
                x.data.dtype.type),
            model=lambda: reference.dot(
                x.data.reshape(-1)[::incx][:n],
                y.data.reshape(-1)[::incy][:n]),
            in_orders=[_stride_order(n, incx),
                       _stride_order(n, incy)]), async_)

    def sdsdot(self, sb, x, y, async_=False):
        """Return sb + x^T y accumulated in double precision."""
        n = self._same_length(x, y)
        return self._execute(lambda: self._reduce_call(
            "sdsdot", n, [x, y],
            lambda chans: level1.sdsdot_kernel(
                n, sb, chans[0], chans[1], chans[2], self.width),
            model=lambda: reference.sdsdot(sb, x.data.reshape(-1),
                                           y.data.reshape(-1))), async_)

    def nrm2(self, x, async_=False):
        """Return the Euclidean norm of x."""
        n = x.num_elements
        return self._execute(lambda: self._reduce_call(
            "nrm2", n, [x],
            lambda chans: level1.nrm2_kernel(
                n, chans[0], chans[1], self.width, x.data.dtype.type),
            model=lambda: reference.nrm2(x.data.reshape(-1))), async_)

    def asum(self, x, async_=False):
        """Return the sum of absolute values of x."""
        n = x.num_elements
        return self._execute(lambda: self._reduce_call(
            "asum", n, [x],
            lambda chans: level1.asum_kernel(
                n, chans[0], chans[1], self.width, x.data.dtype.type),
            model=lambda: reference.asum(x.data.reshape(-1))), async_)

    def iamax(self, x, async_=False):
        """Return the index of the first element of maximal magnitude."""
        n = x.num_elements
        return self._execute(lambda: self._reduce_call(
            "iamax", n, [x],
            lambda chans: level1.iamax_kernel(
                n, chans[0], chans[1], self.width, x.data.dtype.type),
            model=lambda: reference.iamax(x.data.reshape(-1))), async_)

    def rotg(self, a, b, dtype=np.float64):
        """Generate a Givens rotation; returns (r, z, c, s)."""
        r = reference.rotg(a, b, dtype=dtype)
        self.context.record(CallRecord(
            "rotg", "single" if dtype == np.float32 else "double",
            cycles=50, frequency=self._frequency("level1", dtype),
            io_elements=6, flops=10, mode="model"))
        return r

    def rotmg(self, d1, d2, x1, y1, dtype=np.float64):
        """Generate a modified Givens rotation."""
        r = reference.rotmg(d1, d2, x1, y1, dtype=dtype)
        self.context.record(CallRecord(
            "rotmg", "single" if dtype == np.float32 else "double",
            cycles=60, frequency=self._frequency("level1", dtype),
            io_elements=12, flops=30, mode="model"))
        return r

    # -- shared machinery ---------------------------------------------------------
    @staticmethod
    def _stride_len(buf, inc, n):
        """Validate stride/length; derive n from the buffer if omitted."""
        if inc < 1:
            raise ValueError(f"stride must be >= 1, got {inc}")
        avail = 1 + (buf.num_elements - 1) // inc
        if n is None:
            n = avail
        if n < 1 or 1 + (n - 1) * inc > buf.num_elements:
            raise ValueError(
                f"{n} elements with stride {inc} exceed buffer "
                f"{buf.name!r} ({buf.num_elements} elements)")
        return n

    def _stride_pair(self, x, y, incx, incy, n):
        """Common n for a two-vector strided call."""
        if x.data.dtype != y.data.dtype:
            raise TypeError(
                f"mixed precision: {x.data.dtype} vs {y.data.dtype}")
        nx = self._stride_len(x, incx, n)
        ny = self._stride_len(y, incy, n)
        if n is None:
            if nx != ny:
                raise ValueError(
                    f"vector length mismatch under strides: {nx} vs {ny}")
            return nx
        return n

    def _map_call(self, routine, n, in_bufs, out_bufs, kernel_factory,
                  model, target="first_out", in_orders=None,
                  out_orders=None):
        """Run a map-class Level-1 routine.

        ``target`` selects what is returned: ``"first_out"`` (the first
        output buffer's refreshed contents) or ``None`` (routines like
        SWAP/ROT that update several buffers in place return nothing).
        In model mode ``model()`` computes the result that lands in the
        first output buffer (or performs the in-place updates itself and
        returns None).
        """
        precision = self._precision(in_bufs[0])
        freq = self._frequency("level1", in_bufs[0].data.dtype)
        if self.mode == "model":
            result = model()
            if target == "first_out":
                out_bufs[0].data.reshape(-1)[:] = result
            cycles = level1_cycles(routine, n, self.width)
            io = n * (len(in_bufs) + len(out_bufs))
            self.context.record(CallRecord(
                routine, precision, cycles, freq, io,
                routine_flops(routine, n), "model"))
            return (self.context.copy_from_device(out_bufs[0])
                    if target == "first_out" else None)

        io_before = self.context.mem.total_elements_moved
        eng = self._engine()
        chans = []
        for i, buf in enumerate(in_bufs):
            ch = eng.channel(f"in{i}", self.channel_depth)
            order = in_orders[i] if in_orders else None
            eng.add_kernel(f"read{i}", read_kernel(
                self.context.mem, buf, ch, self.width, order=order))
            chans.append(ch)
        out_chans = []
        for i, buf in enumerate(out_bufs):
            ch = eng.channel(f"out{i}", self.channel_depth)
            chans.append(ch)
            out_chans.append((ch, buf))
        latency = level1_latency("map", self.width, precision)
        eng.add_kernel(routine, kernel_factory(chans), latency=latency)
        for i, (ch, buf) in enumerate(out_chans):
            order = out_orders[i] if out_orders else None
            eng.add_kernel(f"write{i}", write_kernel(
                self.context.mem, buf, ch, n, self.width, order=order))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            routine, precision, report.cycles, freq, io,
            routine_flops(routine, n), "simulate"))
        if target == "first_out":
            return self.context.copy_from_device(out_bufs[0])
        return None

    def _reduce_call(self, routine, n, in_bufs, kernel_factory, model,
                     in_orders=None):
        """Run a reduction-class routine; return the scalar result."""
        precision = self._precision(in_bufs[0])
        freq = self._frequency("level1", in_bufs[0].data.dtype)
        if self.mode == "model":
            cycles = level1_cycles(routine if routine != "sdsdot" else "dot",
                                   n, self.width)
            self.context.record(CallRecord(
                routine, precision, cycles, freq,
                n * len(in_bufs) + 1, routine_flops(
                    routine if routine != "iamax" else "iamax", n), "model"))
            return model()

        io_before = self.context.mem.total_elements_moved
        eng = self._engine()
        chans = []
        for i, buf in enumerate(in_bufs):
            ch = eng.channel(f"in{i}", self.channel_depth)
            order = in_orders[i] if in_orders else None
            eng.add_kernel(f"read{i}", read_kernel(
                self.context.mem, buf, ch, self.width, order=order))
            chans.append(ch)
        cres = eng.channel("res", 4)
        chans.append(cres)
        latency = level1_latency("map_reduce", self.width, precision)
        eng.add_kernel(routine, kernel_factory(chans), latency=latency)
        out: List = []
        eng.add_kernel("sink", sink_kernel(cres, 1, 1, out))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before + 1
        self.context.record(CallRecord(
            routine, precision, report.cycles, freq, io,
            routine_flops(routine if routine != "sdsdot" else "dot", n),
            "simulate"))
        return out[0]
