"""Flat-index streaming orders for DRAM interface kernels.

The host layer reads matrices from DRAM in the order the streaming kernels
consume them.  These generators produce the flat (row-major) index
sequences for the Level-2/3 stream contracts; they are shared by the host
API, the composed applications, and the tests.
"""

from __future__ import annotations

from typing import Iterator

from ..streaming.tiling import MatrixSchedule


def matrix_order(schedule: MatrixSchedule) -> Iterator[int]:
    """Alias for the schedule's own enumeration."""
    return schedule.indices()


def vector_blocks_replayed(n: int, replay: int) -> Iterator[int]:
    """The whole vector streamed ``replay`` times."""
    for _ in range(replay):
        yield from range(n)


def gemm_a_order(n: int, k: int, m: int, tile_n: int, tile_m: int
                 ) -> Iterator[int]:
    """A-strip columns for :func:`repro.blas.level3.gemm_tiled`.

    For each C tile (ti, tj) and each kk, the T_N elements
    A[ti*T_N:(ti+1)*T_N, kk]; A is effectively replayed M/T_M times.
    """
    for ti in range(n // tile_n):
        for _tj in range(m // tile_m):
            for kk in range(k):
                base = ti * tile_n
                for r in range(tile_n):
                    yield (base + r) * k + kk


def gemm_b_order(n: int, k: int, m: int, tile_n: int, tile_m: int
                 ) -> Iterator[int]:
    """B-strip rows: B[kk, tj*T_M:(tj+1)*T_M]; replayed N/T_N times."""
    for _ti in range(n // tile_n):
        for tj in range(m // tile_m):
            for kk in range(k):
                base = tj * tile_m
                for c in range(tile_m):
                    yield kk * m + base + c


def gemm_c_order(n: int, m: int, tile_n: int, tile_m: int) -> Iterator[int]:
    """C tiles by rows, row-major elements (both input and output order)."""
    for ti in range(n // tile_n):
        for tj in range(m // tile_m):
            for r in range(tile_n):
                base = (ti * tile_n + r) * m + tj * tile_m
                for c in range(tile_m):
                    yield base + c


def trsv_row_order(n: int, lower: bool) -> Iterator[int]:
    """Full rows of A in solve order (top-down lower, bottom-up upper)."""
    rows = range(n) if lower else range(n - 1, -1, -1)
    for i in rows:
        for j in range(n):
            yield i * n + j


def column_major_order(n: int, m: int) -> Iterator[int]:
    """Columns of an N x M matrix, one after the other (TRSM's B)."""
    for j in range(m):
        for i in range(n):
            yield i * m + j
