"""Level-3 host calls (mixin for :class:`repro.host.api.Fblas`)."""

from __future__ import annotations

import numpy as np

from ..blas import level3, reference
from ..blas.systolic import SystolicConfig, SystolicGemm
from ..fpga.memory import read_kernel, write_kernel
from ..fpga.resources import level1_latency
from ..models.performance import gemm_systolic_cycles, routine_flops
from . import orders
from .context import CallRecord


class Level3Mixin:
    """BLAS Level-3 routines over device buffers."""

    def gemm(self, alpha, a, b, beta, c, impl="systolic", async_=False):
        """C <- alpha*A*B + beta*C.

        ``impl`` selects the spatial design: ``"systolic"`` uses the 2D PE
        array of Sec. III-C (cycle-simulated in "simulate" mode, analytic
        in "model" mode); ``"tiled"`` uses the generic streaming kernel
        through the DRAM interfaces.
        """
        n, k = a.data.shape
        k2, m = b.data.shape
        if k != k2 or c.data.shape != (n, m):
            raise ValueError("gemm shape mismatch")
        if impl not in ("systolic", "tiled"):
            raise ValueError(f"impl must be systolic/tiled, got {impl!r}")
        return self._execute(
            lambda: self._gemm_impl(alpha, a, b, beta, c, impl), async_)

    def _systolic_config(self, n, m):
        pr = self.systolic_rows
        pc = self.systolic_cols
        tr = self._fit_tile(n, multiple_of=pr)
        tc = self._fit_tile(m, multiple_of=pc)
        return SystolicConfig(pr, pc, tr, tc)

    def _gemm_impl(self, alpha, a, b, beta, c, impl):
        n, k = a.data.shape
        m = b.data.shape[1]
        precision = self._precision(a)
        freq = self._frequency("systolic", a.data.dtype)
        flops = routine_flops("gemm", n, m, k)
        tiled_io = self._gemm_io(n, m, k)

        if self.mode == "model":
            c.data[:, :] = reference.gemm(alpha, a.data, b.data, beta, c.data)
            cfg = self._systolic_config(n, m)
            cycles = gemm_systolic_cycles(
                n, m, k, cfg.pr, cfg.pc, cfg.tile_r, cfg.tile_c,
                drain_latency=cfg.elems_per_pe + cfg.pr)
            self.context.record(CallRecord(
                "gemm", precision, cycles, freq, tiled_io, flops, "model"))
            return self.context.copy_from_device(c)

        if impl == "systolic":
            cfg = self._systolic_config(n, m)
            sys = SystolicGemm(cfg, dtype=a.data.dtype.type)
            result, stats = sys.multiply(a.data, b.data, alpha, beta, c.data)
            c.data[:, :] = result
            # Account the DRAM traffic the feeders/drainers would cause.
            a.elements_read += n * k * (m // cfg.tile_c)
            b.elements_read += k * m * (n // cfg.tile_r)
            c.elements_read += n * m
            c.elements_written += n * m
            self.context.record(CallRecord(
                "gemm", precision, stats.cycles, freq, tiled_io, flops,
                "simulate"))
            return self.context.copy_from_device(c)

        # Generic tiled streaming kernel through the DRAM interfaces.
        tn = self._fit_tile(n)
        tm = self._fit_tile(m)
        io_before = self.context.mem.total_elements_moved
        eng = self._engine()
        ca = eng.channel("A", self.channel_depth)
        cb = eng.channel("B", self.channel_depth)
        cc = eng.channel("C", self.channel_depth)
        co = eng.channel("out", self.channel_depth)
        eng.add_kernel("read_a", read_kernel(
            self.context.mem, a, ca, self.width,
            order=orders.gemm_a_order(n, k, m, tn, tm)))
        eng.add_kernel("read_b", read_kernel(
            self.context.mem, b, cb, self.width,
            order=orders.gemm_b_order(n, k, m, tn, tm)))
        eng.add_kernel("read_c", read_kernel(
            self.context.mem, c, cc, self.width,
            order=orders.gemm_c_order(n, m, tn, tm)))
        eng.add_kernel("gemm", level3.gemm_tiled(
            n, m, k, alpha, beta, ca, cb, cc, co, tn, tm, self.width,
            a.data.dtype.type),
            latency=level1_latency("map_reduce", self.width, precision))
        eng.add_kernel("write_c", write_kernel(
            self.context.mem, c, co, n * m, self.width,
            order=orders.gemm_c_order(n, m, tn, tm)))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            "gemm", precision, report.cycles, freq, io, flops, "simulate"))
        return self.context.copy_from_device(c)

    def _gemm_io(self, n, m, k):
        from ..models.iomodel import gemm_io_tiled
        return gemm_io_tiled(n, m, k, self._fit_tile(n), self._fit_tile(m))

    def syrk(self, alpha, a, beta, c, async_=False):
        """C <- alpha*A*A^T + beta*C."""
        n, k = a.data.shape
        if c.data.shape != (n, n):
            raise ValueError("syrk shape mismatch")
        return self._execute(
            lambda: self._syrk_impl(alpha, a, beta, c), async_)

    def _syrk_impl(self, alpha, a, beta, c):
        n, k = a.data.shape
        precision = self._precision(a)
        freq = self._frequency("systolic", a.data.dtype)
        flops = routine_flops("syrk", n, 0, k)
        if self.mode == "model":
            c.data[:, :] = reference.syrk(alpha, a.data, beta, c.data)
            cfg = self._systolic_config(n, n)
            cycles = gemm_systolic_cycles(
                n, n, k, cfg.pr, cfg.pc, cfg.tile_r, cfg.tile_c)
            self.context.record(CallRecord(
                "syrk", precision, cycles, freq, self._gemm_io(n, n, k),
                flops, "model"))
            return self.context.copy_from_device(c)

        tn = self._fit_tile(n)
        io_before = self.context.mem.total_elements_moved
        eng = self._engine()
        ca = eng.channel("A", self.channel_depth)
        cat = eng.channel("At", self.channel_depth)
        cc = eng.channel("C", self.channel_depth)
        co = eng.channel("out", self.channel_depth)
        # A^T strip rows are column reads of A: A^T[kk, col] = A[col, kk],
        # flat index col*k + kk.
        at_order = [col * k + kk
                    for _ti in range(n // tn)
                    for tj in range(n // tn)
                    for kk in range(k)
                    for col in range(tj * tn, (tj + 1) * tn)]
        eng.add_kernel("read_a", read_kernel(
            self.context.mem, a, ca, self.width,
            order=orders.gemm_a_order(n, k, n, tn, tn)))
        eng.add_kernel("read_at", read_kernel(
            self.context.mem, a, cat, self.width, order=at_order))
        eng.add_kernel("read_c", read_kernel(
            self.context.mem, c, cc, self.width,
            order=orders.gemm_c_order(n, n, tn, tn)))
        eng.add_kernel("syrk", level3.syrk_tiled(
            n, k, alpha, beta, ca, cat, cc, co, tn, tn, self.width,
            a.data.dtype.type),
            latency=level1_latency("map_reduce", self.width, precision))
        eng.add_kernel("write_c", write_kernel(
            self.context.mem, c, co, n * n, self.width,
            order=orders.gemm_c_order(n, n, tn, tn)))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            "syrk", precision, report.cycles, freq, io, flops, "simulate"))
        return self.context.copy_from_device(c)

    def syr2k(self, alpha, a, b, beta, c, async_=False):
        """C <- alpha*(A*B^T + B*A^T) + beta*C (model-backed host call)."""
        n, k = a.data.shape
        if b.data.shape != (n, k) or c.data.shape != (n, n):
            raise ValueError("syr2k shape mismatch")

        def impl():
            precision = self._precision(a)
            freq = self._frequency("systolic", a.data.dtype)
            c.data[:, :] = reference.syr2k(alpha, a.data, b.data, beta,
                                           c.data)
            cfg = self._systolic_config(n, n)
            cycles = 2 * gemm_systolic_cycles(
                n, n, k, cfg.pr, cfg.pc, cfg.tile_r, cfg.tile_c)
            self.context.record(CallRecord(
                "syr2k", precision, cycles, freq,
                2 * self._gemm_io(n, n, k), routine_flops("syr2k", n, 0, k),
                "model"))
            return self.context.copy_from_device(c)

        return self._execute(impl, async_)

    def trsm(self, alpha, a, b, lower=True, unit_diag=False, async_=False):
        """B <- solution X of A X = alpha*B (left side)."""
        n = a.data.shape[0]
        if a.data.shape != (n, n) or b.data.shape[0] != n:
            raise ValueError("trsm shape mismatch")
        return self._execute(
            lambda: self._trsm_impl(alpha, a, b, lower, unit_diag), async_)

    def _trsm_impl(self, alpha, a, b, lower, unit_diag):
        n, m = b.data.shape
        precision = self._precision(a)
        freq = self._frequency("level2", a.data.dtype)
        flops = routine_flops("trsm", n, m)
        if self.mode == "model":
            b.data[:, :] = reference.trsm(alpha, a.data, b.data,
                                          lower=lower, unit_diag=unit_diag)
            self.context.record(CallRecord(
                "trsm", precision,
                n * n // self.width + n * m // self.width, freq,
                n * n + 2 * n * m, flops, "model"))
            return self.context.copy_from_device(b)

        io_before = self.context.mem.total_elements_moved
        eng = self._engine()
        ca = eng.channel("A", self.channel_depth)
        cb = eng.channel("B", self.channel_depth)
        co = eng.channel("out", self.channel_depth)
        col_order = list(orders.column_major_order(n, m))
        eng.add_kernel("read_a", read_kernel(
            self.context.mem, a, ca, self.width))
        eng.add_kernel("read_b", read_kernel(
            self.context.mem, b, cb, self.width, order=col_order))
        eng.add_kernel("trsm", level3.trsm_tiled(
            n, m, alpha, ca, cb, co, self.width, a.data.dtype.type,
            lower, unit_diag),
            latency=level1_latency("map_reduce", self.width, precision))
        eng.add_kernel("write_b", write_kernel(
            self.context.mem, b, co, n * m, self.width, order=col_order))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            "trsm", precision, report.cycles, freq, io, flops, "simulate"))
        return self.context.copy_from_device(b)

    # -- batched tiny-matrix routines (Table V) -------------------------------
    def batched_gemm(self, size, a_batch, b_batch, c_batch,
                     alpha=1.0, beta=1.0):
        """Run ``nbatch`` fully-unrolled size x size GEMMs, one per cycle.

        ``*_batch`` are (nbatch, size, size) device buffers.  Returns the
        result array; the call record reflects the II=1 pipeline: roughly
        ``latency + nbatch`` cycles when DRAM can feed a problem per cycle.
        """
        nbatch = a_batch.data.shape[0]
        precision = self._precision(a_batch)
        freq = self._frequency("level1", a_batch.data.dtype)
        dt = a_batch.data.dtype.type
        s2 = size * size
        if self.mode == "model":
            out = np.empty_like(c_batch.data)
            for i in range(nbatch):
                out[i] = reference.gemm(alpha, a_batch.data[i],
                                        b_batch.data[i], beta,
                                        c_batch.data[i])
            c_batch.data[:] = out
            self.context.record(CallRecord(
                "gemm_batched", precision, 40 + nbatch, freq,
                4 * s2 * nbatch, 2 * size ** 3 * nbatch, "model"))
            return self.context.copy_from_device(c_batch)

        io_before = self.context.mem.total_elements_moved
        eng = self._engine()
        ci = eng.channel("in", 4 * s2)
        co = eng.channel("out", 2 * s2)

        def feeder():
            from ..fpga.kernel import Clock, Push
            for i in range(nbatch):
                vals = (tuple(a_batch.data[i].reshape(-1))
                        + tuple(b_batch.data[i].reshape(-1))
                        + tuple(c_batch.data[i].reshape(-1)))
                granted = 0
                need = 3 * s2 * a_batch.itemsize
                while granted < need:
                    granted += self.context.mem.request_read(a_batch,
                                                             need - granted)
                    yield Clock()
                a_batch.elements_read += s2
                b_batch.elements_read += s2
                c_batch.elements_read += s2
                yield Push(ci, vals, 1)
                yield Clock()

        eng.add_kernel("feed", feeder())
        eng.add_kernel("gemm_u", level3.gemm_unrolled(
            size, nbatch, alpha, beta, ci, co, dt), latency=40)
        eng.add_kernel("write", write_kernel(
            self.context.mem, c_batch, co, nbatch * s2, s2))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            "gemm_batched", precision, report.cycles, freq, io,
            2 * size ** 3 * nbatch, "simulate"))
        return self.context.copy_from_device(c_batch)

    def batched_trsm(self, size, a_batch, b_batch, alpha=1.0):
        """Run ``nbatch`` fully-unrolled size x size TRSMs, one per cycle."""
        nbatch = a_batch.data.shape[0]
        precision = self._precision(a_batch)
        freq = self._frequency("level1", a_batch.data.dtype)
        s2 = size * size
        if self.mode == "model":
            out = np.empty_like(b_batch.data)
            for i in range(nbatch):
                out[i] = reference.trsm(alpha, a_batch.data[i],
                                        b_batch.data[i])
            b_batch.data[:] = out
            self.context.record(CallRecord(
                "trsm_batched", precision, 50 + nbatch, freq,
                3 * s2 * nbatch, size ** 3 * nbatch, "model"))
            return self.context.copy_from_device(b_batch)

        io_before = self.context.mem.total_elements_moved
        eng = self._engine()
        ci = eng.channel("in", 3 * s2)
        co = eng.channel("out", 2 * s2)

        def feeder():
            from ..fpga.kernel import Clock, Push
            for i in range(nbatch):
                vals = (tuple(a_batch.data[i].reshape(-1))
                        + tuple(b_batch.data[i].reshape(-1)))
                granted = 0
                need = 2 * s2 * a_batch.itemsize
                while granted < need:
                    granted += self.context.mem.request_read(a_batch,
                                                             need - granted)
                    yield Clock()
                a_batch.elements_read += s2
                b_batch.elements_read += s2
                yield Push(ci, vals, 1)
                yield Clock()

        eng.add_kernel("feed", feeder())
        eng.add_kernel("trsm_u", level3.trsm_unrolled(
            size, nbatch, alpha, ci, co, a_batch.data.dtype.type),
            latency=50)
        eng.add_kernel("write", write_kernel(
            self.context.mem, b_batch, co, nbatch * s2, s2))
        report = eng.run()
        io = self.context.mem.total_elements_moved - io_before
        self.context.record(CallRecord(
            "trsm_batched", precision, report.cycles, freq, io,
            size ** 3 * nbatch, "simulate"))
        return self.context.copy_from_device(b_batch)
