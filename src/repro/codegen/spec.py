"""Routine specification files (Sec. II-C).

The FBLAS code generator accepts a JSON file listing the routines the user
wants, with *functional* parameters (transposition, triangle, side — they
change the routine's semantics) and *non-functional* parameters
(vectorization width, tile sizes — they trade resources for performance).
This module parses and validates those files into :class:`RoutineSpec`
objects consumed by :mod:`repro.codegen.generator`.

Example specification::

    {
      "routine": [
        {"blas_name": "dot",  "user_name": "my_dot",
         "precision": "single", "width": 16},
        {"blas_name": "gemv", "user_name": "my_gemv",
         "precision": "double", "width": 8,
         "tile_n_size": 1024, "tile_m_size": 1024,
         "matrix_order": "tiles_by_rows", "transposed": false}
      ]
    }
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import List

from ..blas.routines import REGISTRY, info

VALID_PRECISIONS = ("single", "double")
VALID_ORDERS = ("tiles_by_rows", "tiles_by_cols")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class SpecError(ValueError):
    """Raised on malformed routine specifications."""


@dataclass(frozen=True)
class RoutineSpec:
    """One validated routine request."""

    blas_name: str
    user_name: str
    precision: str = "single"
    width: int = 1
    tile_n_size: int = 0            # 0 = untiled
    tile_m_size: int = 0
    matrix_order: str = "tiles_by_rows"
    transposed: bool = False
    lower: bool = True
    unit_diag: bool = False
    side: str = "left"
    # Systolic geometry (GEMM only); 0 selects the generic tiled kernel.
    systolic_rows: int = 0
    systolic_cols: int = 0

    def __post_init__(self):
        if self.blas_name not in REGISTRY:
            raise SpecError(f"unknown BLAS routine {self.blas_name!r}")
        if not _NAME_RE.match(self.user_name):
            raise SpecError(f"invalid user_name {self.user_name!r}")
        if self.precision not in VALID_PRECISIONS:
            raise SpecError(
                f"{self.user_name}: precision must be one of "
                f"{VALID_PRECISIONS}, got {self.precision!r}")
        if self.width < 1:
            raise SpecError(f"{self.user_name}: width must be >= 1")
        if self.matrix_order not in VALID_ORDERS:
            raise SpecError(
                f"{self.user_name}: matrix_order must be one of "
                f"{VALID_ORDERS}")
        if self.side not in ("left", "right"):
            raise SpecError(f"{self.user_name}: side must be left/right")
        ri = info(self.blas_name)
        if self.tiled and not ri.supports_tiling:
            raise SpecError(
                f"{self.user_name}: routine {self.blas_name!r} does not "
                "take tile sizes")
        if (self.tile_n_size < 0 or self.tile_m_size < 0
                or bool(self.tile_n_size) != bool(self.tile_m_size)):
            raise SpecError(
                f"{self.user_name}: tile sizes must be both set or both 0")
        if (self.systolic_rows or self.systolic_cols):
            if self.blas_name != "gemm":
                raise SpecError(
                    f"{self.user_name}: systolic geometry is GEMM-only")
            if self.systolic_rows < 1 or self.systolic_cols < 1:
                raise SpecError(
                    f"{self.user_name}: systolic grid must be positive")
            if (self.tile_n_size % self.systolic_rows
                    or self.tile_m_size % self.systolic_cols):
                raise SpecError(
                    f"{self.user_name}: memory tile must be a multiple of "
                    "the systolic grid")

    @property
    def tiled(self) -> bool:
        return self.tile_n_size > 0

    @property
    def ctype(self) -> str:
        return "float" if self.precision == "single" else "double"

    @property
    def prefix(self) -> str:
        """BLAS-style precision prefix (s/d)."""
        return "s" if self.precision == "single" else "d"

    @property
    def routine_info(self):
        return info(self.blas_name)


def parse_spec(data: dict) -> List[RoutineSpec]:
    """Parse a decoded specification dict."""
    if not isinstance(data, dict) or "routine" not in data:
        raise SpecError("specification must be an object with a 'routine' list")
    routines = data["routine"]
    if not isinstance(routines, list) or not routines:
        raise SpecError("'routine' must be a non-empty list")
    specs = []
    seen = set()
    for i, entry in enumerate(routines):
        if not isinstance(entry, dict):
            raise SpecError(f"routine #{i} is not an object")
        unknown = set(entry) - {f.strip() for f in (
            "blas_name", "user_name", "precision", "width", "tile_n_size",
            "tile_m_size", "matrix_order", "transposed", "lower",
            "unit_diag", "side", "systolic_rows", "systolic_cols")}
        if unknown:
            raise SpecError(f"routine #{i}: unknown keys {sorted(unknown)}")
        if "blas_name" not in entry:
            raise SpecError(f"routine #{i}: missing blas_name")
        kwargs = dict(entry)
        kwargs.setdefault("user_name", f"{kwargs['blas_name']}_{i}")
        spec = RoutineSpec(**kwargs)
        if spec.user_name in seen:
            raise SpecError(f"duplicate user_name {spec.user_name!r}")
        seen.add(spec.user_name)
        specs.append(spec)
    return specs


def load_spec(path) -> List[RoutineSpec]:
    """Load and parse a JSON specification file."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"invalid JSON in {path}: {exc}") from exc
    return parse_spec(data)
