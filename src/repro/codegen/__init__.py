"""Template-based code generator: JSON routine specs -> OpenCL + simulator."""

from .composition import emit_composition
from .generator import CodeGenerator, GeneratedRoutine, generate_routine
from .spec import RoutineSpec, SpecError, load_spec, parse_spec

__all__ = ["CodeGenerator", "GeneratedRoutine", "RoutineSpec", "SpecError",
           "emit_composition", "generate_routine", "load_spec",
           "parse_spec"]
