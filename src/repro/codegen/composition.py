"""Emit a full streaming composition as one OpenCL source file.

FBLAS users assemble compositions by instantiating generated modules and
connecting their channels by hand.  This emitter automates that assembly:
given an :class:`~repro.streaming.mdag.MDAG` whose compute nodes map to
:class:`~repro.codegen.spec.RoutineSpec` objects, it produces a single
synthesizable-style file containing

* one shared channel declaration per MDAG edge, at the planned depth;
* each module's kernel source with its port channels aliased (via
  ``#define``) onto the shared edges — the ``#define``/``#undef`` pairs
  are how hand-written FBLAS compositions retarget module channel names;
* read/write helper kernels for the interface nodes.

The result is the artifact a user would hand to the Intel offline
compiler to build, e.g., the AXPYDOT bitstream of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..fpga.device import FpgaDevice
from ..fpga.resources import (
    ResourceUsage,
    gemm_systolic_resources,
    interface_module_resources,
    level1_resources,
    level2_resources,
)
from ..plan import PlanIR, compile_plan
from ..streaming.mdag import MDAG
from . import templates
from .spec import RoutineSpec, SpecError


def _plan_for_emission(mdag: MDAG) -> PlanIR:
    """Compile the MDAG once; fall back to a structural (unplanned)
    view for graphs the scheduler rejects — codegen still emits those
    so the analyzer's report can be read next to the source."""
    from ..streaming.mdag import MDAGError
    from ..streaming.scheduler import CompositionPlan, PlanningError
    from ..plan import plan_from_composition
    try:
        return compile_plan(mdag)
    except (PlanningError, MDAGError):
        passthrough = CompositionPlan(
            mdag=mdag, components=[set(mdag.graph.nodes)])
        return plan_from_composition(mdag, passthrough)


def emit_composition(mdag: MDAG, specs: Dict[str, RoutineSpec],
                     name: str = "composition",
                     port_map: Optional[Dict[str, Dict[str, str]]] = None,
                     plan: Optional[PlanIR] = None) -> str:
    """Emit the composition source.

    Parameters
    ----------
    mdag:
        The module DAG (interface + compute nodes).
    specs:
        RoutineSpec per *compute* node.
    port_map:
        Optional per-node mapping from MDAG neighbour name to the
        routine's port name (e.g. ``{"dot": {"axpy": "x", "read_u":
        "y"}}``).  When omitted, ports are assigned to neighbours in
        declaration order.
    plan:
        Optional pre-compiled :class:`~repro.plan.PlanIR`; by default
        the MDAG is compiled through :func:`repro.plan.compile_plan`,
        so the channel declarations carry the *planned* depths (the
        scheduler's reordering-window sizing included) rather than the
        raw edge attributes.
    """
    port_map = port_map or {}
    if plan is None:
        plan = _plan_for_emission(mdag)
    edge_depths = {(e.src, e.dst): e.depth for e in plan.edges}
    compute_nodes = [n for n in mdag.graph.nodes
                     if mdag.kind(n) == "compute"]
    missing = [n for n in compute_nodes if n not in specs]
    if missing:
        raise SpecError(f"no RoutineSpec for compute nodes: {missing}")

    lines = [
        f"// Streaming composition {name!r}, generated from an MDAG of",
        f"// {len(compute_nodes)} compute modules and "
        f"{mdag.graph.number_of_nodes() - len(compute_nodes)} interface "
        "modules.",
        "#pragma OPENCL EXTENSION cl_intel_channels : enable",
        "",
    ]

    # -- shared edge channels ------------------------------------------------
    def edge_channel(u, v):
        return f"{u}__{v}"

    for e in plan.edges:
        u, v = e.src, e.dst
        ctype = "float"
        for node in (u, v):
            if node in specs:
                ctype = specs[node].ctype
        lines.append(
            f"channel {ctype} {edge_channel(u, v)} "
            f"__attribute__((depth({edge_depths[(u, v)]})));")
    lines.append("")

    # -- module sources with port aliasing -------------------------------------
    for node in compute_nodes:
        spec = specs[node]
        info = spec.routine_info
        ins = list(mdag.graph.predecessors(node))
        outs = list(mdag.graph.successors(node))
        if len(ins) > len(info.inputs) or len(outs) > len(info.outputs):
            raise SpecError(
                f"{node!r}: MDAG degree exceeds the {spec.blas_name} "
                f"port count ({len(info.inputs)} in/"
                f"{len(info.outputs)} out)")
        mapping = port_map.get(node, {})
        aliases = []
        for i, u in enumerate(ins):
            port = mapping.get(u, info.inputs[i]).lower()
            aliases.append((f"{spec.user_name}_ch_{port}",
                            edge_channel(u, node)))
        for i, v in enumerate(outs):
            port = mapping.get(v, info.outputs[i]).lower()
            aliases.append((f"{spec.user_name}_ch_{port}",
                            edge_channel(node, v)))
        lines.append(f"// ---- module {node}: {spec.precision} "
                     f"{spec.blas_name}, W={spec.width} ----")
        for port_ch, edge_ch in aliases:
            lines.append(f"#define {port_ch} {edge_ch}")
        lines.append(templates.emit_routine(spec, declare_channels=False))
        for port_ch, _edge_ch in aliases:
            lines.append(f"#undef {port_ch}")
        lines.append("")

    # -- interface helper kernels ----------------------------------------------
    for node in mdag.graph.nodes:
        if mdag.kind(node) != "interface":
            continue
        for v in mdag.graph.successors(node):
            lines.append(
                f"// interface {node}: DRAM -> {edge_channel(node, v)}")
            lines.append(_interface_reader(node, v, edge_channel(node, v)))
        for u in mdag.graph.predecessors(node):
            lines.append(
                f"// interface {node}: {edge_channel(u, node)} -> DRAM")
            lines.append(_interface_writer(node, u, edge_channel(u, node)))
    return "\n".join(lines)


def _interface_reader(node, consumer, channel):
    return (
        f"__kernel void {node}_to_{consumer}"
        "(__global volatile float* restrict mem, int n)\n"
        "{\n"
        "    for (int i = 0; i < n; i++)\n"
        f"        write_channel_intel({channel}, mem[i]);\n"
        "}\n")


def _interface_writer(node, producer, channel):
    return (
        f"__kernel void {producer}_to_{node}"
        "(__global volatile float* restrict mem, int n)\n"
        "{\n"
        "    for (int i = 0; i < n; i++)\n"
        f"        mem[i] = read_channel_intel({channel});\n"
        "}\n")


def spec_resources(spec: RoutineSpec,
                   device: Optional[FpgaDevice] = None) -> ResourceUsage:
    """Resource estimate for one module built from ``spec``."""
    info = spec.routine_info
    if spec.blas_name == "gemm" and spec.systolic_rows:
        return gemm_systolic_resources(
            spec.systolic_rows, spec.systolic_cols,
            spec.tile_n_size, spec.tile_m_size, spec.precision,
            device=device)
    if spec.tiled:
        return level2_resources(spec.width, max(spec.tile_n_size,
                                                spec.tile_m_size),
                                spec.precision, device=device)
    return level1_resources(info.inner_class, spec.width, spec.precision)


@dataclass(frozen=True)
class CompositionResources:
    """Resource comparison: streamed composition vs one-by-one designs.

    The streamed design instantiates each compute module once plus one
    DRAM interface per MDAG interface node; the host-layer alternative
    synthesizes each routine with a full set of its own interfaces (one
    per port) — the difference is the paper's measured up-to-40% saving.
    """

    streaming: ResourceUsage
    standalone: ResourceUsage

    @property
    def savings(self) -> float:
        """Fractional LUT saving of the streamed composition."""
        if self.standalone.luts == 0:
            return 0.0
        return 1.0 - self.streaming.luts / self.standalone.luts


def composition_resources(mdag: MDAG, specs: Dict[str, RoutineSpec],
                          device: Optional[FpgaDevice] = None
                          ) -> CompositionResources:
    """Estimate the streamed composition's resources vs standalone modules."""
    iface = interface_module_resources()
    streaming = ResourceUsage(0, 0, 0, 0)
    standalone = ResourceUsage(0, 0, 0, 0)
    for node in mdag.graph.nodes:
        kind = mdag.kind(node)
        if kind == "interface":
            streaming = streaming + iface
            continue
        if node not in specs:
            raise SpecError(f"no RoutineSpec for compute node {node!r}")
        spec = specs[node]
        module = spec_resources(spec, device)
        streaming = streaming + module
        info = spec.routine_info
        ports = len(info.inputs) + len(info.outputs)
        standalone = standalone + module + iface.scaled(ports)
    return CompositionResources(streaming=streaming, standalone=standalone)
