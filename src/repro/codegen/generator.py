"""The template-based code generator (Sec. II-C).

For every routine in a specification file the generator produces:

* a synthesizable-style OpenCL source file (the artifact FBLAS feeds to
  the Intel HLS compiler), plus read/write helper kernels for DRAM-facing
  ports; and
* a *simulator binding* — a factory building the equivalent streaming
  kernel for :mod:`repro.fpga`, specialized with the spec's width, tile
  sizes, and precision.  This is the "synthesis backend" of the
  reproduction: generated designs actually run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from ..blas import level1, level2, level3
from ..fpga.resources import level1_latency
from . import templates, xilinx
from .spec import RoutineSpec, SpecError, load_spec, parse_spec

#: Supported synthesis targets: Intel OpenCL (the paper's release) and
#: Xilinx Vivado HLS / SDAccel (the paper's stated future work).
TARGETS = ("intel", "xilinx")
_EXTENSIONS = {"intel": ".cl", "xilinx": ".cpp"}


@dataclass
class GeneratedRoutine:
    """One generated routine: source text plus an executable binding."""

    spec: RoutineSpec
    source: str
    helpers: Dict[str, str]
    make_kernel: Callable
    latency: int
    target: str = "intel"

    @property
    def dtype(self):
        return np.float32 if self.spec.precision == "single" else np.float64

    def write(self, directory: Path) -> List[Path]:
        """Write the kernel files; returns the paths written."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        ext = _EXTENSIONS[self.target]
        paths = []
        main = directory / f"{self.spec.user_name}{ext}"
        main.write_text(self.source)
        paths.append(main)
        for name, text in self.helpers.items():
            p = directory / f"{self.spec.user_name}_{name}{ext}"
            p.write_text(text)
            paths.append(p)
        return paths


def _binding(spec: RoutineSpec) -> Callable:
    """Build the simulator factory for ``spec``.

    The returned callable takes the problem sizes, scalars, and channels
    of the routine (matching the signatures in :mod:`repro.blas`) with the
    spec's non-functional parameters (width, tiles, dtype) already bound.
    """
    w = spec.width
    dt = np.float32 if spec.precision == "single" else np.float64
    name = spec.blas_name

    if name == "scal":
        return lambda n, alpha, ch_x, ch_out: level1.scal_kernel(
            n, alpha, ch_x, ch_out, w, dt)
    if name == "copy":
        return lambda n, ch_x, ch_out: level1.copy_kernel(n, ch_x, ch_out, w, dt)
    if name == "axpy":
        return lambda n, alpha, ch_x, ch_y, ch_out: level1.axpy_kernel(
            n, alpha, ch_x, ch_y, ch_out, w, dt)
    if name == "swap":
        return lambda n, cx, cy, cox, coy: level1.swap_kernel(
            n, cx, cy, cox, coy, w, dt)
    if name == "rot":
        return lambda n, c, s, cx, cy, cox, coy: level1.rot_kernel(
            n, c, s, cx, cy, cox, coy, w, dt)
    if name == "rotm":
        return lambda n, param, cx, cy, cox, coy: level1.rotm_kernel(
            n, param, cx, cy, cox, coy, w, dt)
    if name == "dot":
        return lambda n, cx, cy, cr: level1.dot_kernel(n, cx, cy, cr, w, dt)
    if name == "sdsdot":
        return lambda n, sb, cx, cy, cr: level1.sdsdot_kernel(
            n, sb, cx, cy, cr, w)
    if name == "nrm2":
        return lambda n, cx, cr: level1.nrm2_kernel(n, cx, cr, w, dt)
    if name == "asum":
        return lambda n, cx, cr: level1.asum_kernel(n, cx, cr, w, dt)
    if name == "iamax":
        return lambda n, cx, cr: level1.iamax_kernel(n, cx, cr, w, dt)
    if name == "rotg":
        return lambda ci, co: level1.rotg_kernel(ci, co, dt)
    if name == "rotmg":
        return lambda ci, co: level1.rotmg_kernel(ci, co, dt)

    tn, tm = spec.tile_n_size, spec.tile_m_size
    if name == "gemv":
        if not spec.tiled:
            return lambda n, m, alpha, beta, ca, cx, cy, co: \
                level2.gemv_nontiled(n, m, alpha, beta, ca, cx, cy, co, w, dt)
        if spec.transposed:
            return lambda n, m, alpha, beta, ca, cx, cy, co: \
                level2.gemv_transposed_row_tiles(
                    n, m, alpha, beta, ca, cx, cy, co, tn, tm, w, dt)
        if spec.matrix_order == "tiles_by_rows":
            return lambda n, m, alpha, beta, ca, cx, cy, co: \
                level2.gemv_row_tiles(
                    n, m, alpha, beta, ca, cx, cy, co, tn, tm, w, dt)
        return lambda n, m, alpha, beta, ca, cx, cy, co: \
            level2.gemv_col_tiles(
                n, m, alpha, beta, ca, cx, cy, co, tn, tm, w, dt)
    if name == "ger":
        return lambda n, m, alpha, ca, cx, cy, co: level2.ger_kernel(
            n, m, alpha, ca, cx, cy, co, tn, tm, w, dt)
    if name == "syr":
        return lambda n, alpha, ca, cxr, cxc, co: level2.syr_kernel(
            n, alpha, ca, cxr, cxc, co, tn, tm, w, dt)
    if name == "syr2":
        return lambda n, alpha, ca, cxr, cyc, cyr, cxc, co: \
            level2.syr2_kernel(n, alpha, ca, cxr, cyc, cyr, cxc, co,
                               tn, tm, w, dt)
    if name == "trsv":
        return lambda n, ca, cb, co: level2.trsv_kernel(
            n, ca, cb, co, w, dt, spec.lower, spec.unit_diag)
    if name == "gemm":
        return lambda n, m, k, alpha, beta, ca, cb, cc, co: \
            level3.gemm_tiled(n, m, k, alpha, beta, ca, cb, cc, co,
                              tn, tm, w, dt)
    if name == "syrk":
        return lambda n, k, alpha, beta, ca, cat, cc, co: \
            level3.syrk_tiled(n, k, alpha, beta, ca, cat, cc, co,
                              tn, tm, w, dt)
    if name == "syr2k":
        return lambda n, k, alpha, beta, ca, cbt, cb, cat, cc, co: \
            level3.syr2k_tiled(n, k, alpha, beta, ca, cbt, cb, cat, cc, co,
                               tn, tm, w, dt)
    if name == "trsm":
        return lambda n, m, alpha, ca, cb, co: level3.trsm_tiled(
            n, m, alpha, ca, cb, co, w, dt, spec.lower, spec.unit_diag)
    raise SpecError(f"no simulator binding for {name!r}")  # pragma: no cover


def generate_routine(spec: RoutineSpec, target: str = "intel"
                     ) -> GeneratedRoutine:
    """Generate one routine: source, helpers, simulator binding.

    ``target`` selects the backend: ``"intel"`` emits OpenCL with
    cl_intel_channels; ``"xilinx"`` emits Vivado-HLS C++ with hls::stream.
    The simulator binding is target-independent.
    """
    if target not in TARGETS:
        raise SpecError(f"unknown target {target!r}; pick from {TARGETS}")
    backend = templates if target == "intel" else xilinx
    source = backend.emit_routine(spec)
    helpers = {}
    ri = spec.routine_info
    for port in ri.inputs:
        helpers[f"read_{port.lower()}"] = backend.emit_read_helper(spec, port)
    for port in ri.outputs:
        helpers[f"write_{port.lower()}"] = backend.emit_write_helper(
            spec, port)
    latency = level1_latency(ri.inner_class, spec.width, spec.precision)
    return GeneratedRoutine(spec=spec, source=source, helpers=helpers,
                            make_kernel=_binding(spec), latency=latency,
                            target=target)


class CodeGenerator:
    """Generate all routines of a specification."""

    def __init__(self, specs, target: str = "intel"):
        if isinstance(specs, (str, Path)):
            specs = load_spec(specs)
        elif isinstance(specs, dict):
            specs = parse_spec(specs)
        self.specs = list(specs)
        self.target = target
        self.routines: Dict[str, GeneratedRoutine] = {
            s.user_name: generate_routine(s, target) for s in self.specs}

    def __getitem__(self, user_name: str) -> GeneratedRoutine:
        return self.routines[user_name]

    def write_all(self, directory) -> List[Path]:
        """Emit every generated .cl file into ``directory``."""
        paths = []
        for routine in self.routines.values():
            paths.extend(routine.write(Path(directory)))
        return paths
