"""Command-line entry point for the code generator (Sec. II-C).

Mirrors FBLAS's generator binary: a routine-specification JSON in,
synthesizable kernel files out.

Usage::

    python -m repro.codegen routines.json -o generated/
    python -m repro.codegen routines.json -o generated/ --target xilinx
    python -m repro.codegen routines.json --list
    python -m repro.codegen routines.json --lint [--device stratix10]
"""

from __future__ import annotations

import argparse
import sys

from .generator import TARGETS, CodeGenerator
from .spec import SpecError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.codegen",
        description="Generate FBLAS HLS kernels from a routine "
                    "specification file.")
    parser.add_argument("spec", help="routine specification JSON file")
    parser.add_argument("-o", "--output", default="generated",
                        help="output directory (default: generated/)")
    parser.add_argument("--target", choices=TARGETS, default="intel",
                        help="synthesis backend (default: intel)")
    parser.add_argument("--list", action="store_true",
                        help="only list the routines the spec defines")
    parser.add_argument("--lint", action="store_true",
                        help="run the static analyzer (repro.analysis) on "
                             "the spec instead of generating code")
    parser.add_argument("--device", choices=("arria10", "stratix10"),
                        help="with --lint: also check resource fit "
                             "against this device")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        gen = CodeGenerator(args.spec, target=args.target)
    except (SpecError, FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.lint:
        from ..analysis import analyze_specs
        from ..fpga.device import DEVICES

        device = DEVICES[args.device] if args.device else None
        result = analyze_specs(
            [r.spec for r in gen.routines.values()], device=device)
        print(result.render_text())
        return 1 if result.errors else 0
    if args.list:
        for name, routine in gen.routines.items():
            s = routine.spec
            extras = []
            if s.tiled:
                extras.append(f"tiles {s.tile_n_size}x{s.tile_m_size}")
            if s.systolic_rows:
                extras.append(
                    f"systolic {s.systolic_rows}x{s.systolic_cols}")
            detail = f" ({', '.join(extras)})" if extras else ""
            print(f"{name}: {s.precision} {s.blas_name}, W={s.width}"
                  f"{detail}")
        return 0
    paths = gen.write_all(args.output)
    for p in paths:
        print(p)
    print(f"generated {len(paths)} files for target {args.target!r} "
          f"in {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":           # pragma: no cover - exercised via CLI
    sys.exit(main())
