"""FBLAS reproduction: streaming linear algebra on a simulated FPGA.

This package reproduces *FBLAS: Streaming Linear Algebra on FPGA* (De
Matteis, de Fine Licht, Hoefler -- SC 2020) in pure Python.  The physical
FPGA is replaced by a cycle-level streaming dataflow simulator; everything
above it -- the 22 BLAS routines, the code generator, the host API, the
space/time models, and the streaming-composition framework -- follows the
paper's design.

Layers (see DESIGN.md):

* :mod:`repro.fpga`      -- channels, cycle engine, DRAM, devices, resources
* :mod:`repro.models`    -- work/depth, performance, and I/O models (Sec. IV/V)
* :mod:`repro.streaming` -- tiling schedules, stream signatures, MDAG analysis
* :mod:`repro.analysis`  -- static design checker (FBxxx diagnostics, preflight)
* :mod:`repro.blas`      -- routine kernels (streaming + numpy references)
* :mod:`repro.codegen`   -- JSON spec -> OpenCL source + simulator bindings
* :mod:`repro.host`      -- BLAS-style host API over simulated device memory
* :mod:`repro.apps`      -- AXPYDOT, BICG, ATAX, GEMVER compositions
* :mod:`repro.telemetry` -- spans, metrics, Chrome traces, drift reports

Quickstart::

    import numpy as np
    from repro.host import Fblas

    fb = Fblas(width=16)
    x = fb.copy_to_device(np.arange(1024, dtype=np.float32))
    y = fb.copy_to_device(np.ones(1024, dtype=np.float32))
    print(fb.sdot(x, y), fb.records[-1].cycles, "cycles")
"""

__version__ = "1.0.0"

from . import (analysis, apps, blas, codegen, fpga, host, models, streaming,
               telemetry)

__all__ = ["analysis", "apps", "blas", "codegen", "fpga", "host", "models",
           "streaming", "telemetry", "__version__"]
