"""2D tiling schedules for matrix streams (Sec. III-B).

A matrix crossing a streaming interface is tiled in 2D; both the order of
tiles and the order of elements within a tile can be scheduled by rows or
by columns, giving the four streaming modes of the paper.  A schedule is a
deterministic enumeration of flat (row-major) element indices; interface
kernels iterate it to read DRAM in streaming order, and compute kernels
are written against the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator


class TileOrder(Enum):
    """Order in which tiles of the 2D grid are visited."""

    BY_ROWS = "tiles_by_rows"        # tile (0,0), (0,1), ... then next row
    BY_COLS = "tiles_by_cols"        # tile (0,0), (1,0), ... then next col


class ElementOrder(Enum):
    """Order in which elements within one tile are streamed."""

    ROW_MAJOR = "row_major"
    COL_MAJOR = "col_major"


@dataclass(frozen=True)
class MatrixSchedule:
    """A complete streaming schedule for an N x M matrix.

    ``tile_rows`` x ``tile_cols`` tiles are visited in ``tile_order``;
    elements within each tile in ``elem_order``.  Dimensions must divide
    evenly into tiles — FBLAS requires compile-time tile sizes and the
    code generator pads otherwise; here we keep the invariant explicit.
    """

    rows: int
    cols: int
    tile_rows: int
    tile_cols: int
    tile_order: TileOrder = TileOrder.BY_ROWS
    elem_order: ElementOrder = ElementOrder.ROW_MAJOR

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError("matrix dimensions must be positive")
        if self.tile_rows < 1 or self.tile_cols < 1:
            raise ValueError("tile dimensions must be positive")
        if self.rows % self.tile_rows or self.cols % self.tile_cols:
            raise ValueError(
                f"matrix {self.rows}x{self.cols} is not divisible into "
                f"{self.tile_rows}x{self.tile_cols} tiles")

    # -- geometry -----------------------------------------------------------
    @property
    def grid_rows(self) -> int:
        return self.rows // self.tile_rows

    @property
    def grid_cols(self) -> int:
        return self.cols // self.tile_cols

    @property
    def num_tiles(self) -> int:
        return self.grid_rows * self.grid_cols

    @property
    def num_elements(self) -> int:
        return self.rows * self.cols

    @property
    def elements_per_tile(self) -> int:
        return self.tile_rows * self.tile_cols

    # -- enumeration ----------------------------------------------------------
    def tiles(self) -> Iterator[tuple]:
        """Yield (tile_row, tile_col) in streaming order."""
        if self.tile_order is TileOrder.BY_ROWS:
            for ti in range(self.grid_rows):
                for tj in range(self.grid_cols):
                    yield ti, tj
        else:
            for tj in range(self.grid_cols):
                for ti in range(self.grid_rows):
                    yield ti, tj

    def tile_elements(self, ti: int, tj: int) -> Iterator[int]:
        """Yield flat row-major indices of tile (ti, tj) in element order."""
        r0 = ti * self.tile_rows
        c0 = tj * self.tile_cols
        if self.elem_order is ElementOrder.ROW_MAJOR:
            for r in range(r0, r0 + self.tile_rows):
                base = r * self.cols
                for c in range(c0, c0 + self.tile_cols):
                    yield base + c
        else:
            for c in range(c0, c0 + self.tile_cols):
                for r in range(r0, r0 + self.tile_rows):
                    yield r * self.cols + c

    def indices(self) -> Iterable[int]:
        """Flat row-major indices of the whole matrix in streaming order.

        When the streaming order *is* the linear row-major order —
        full-width row bands (``tile_cols == cols``) with row-major
        elements — the result is a unit-stride :class:`range`, which
        :func:`repro.fpga.memory.read_kernel` and
        :func:`~repro.fpga.memory.write_kernel` normalize onto their
        patterned linear fast path, keeping such schedules certifiable.
        """
        if (self.elem_order is ElementOrder.ROW_MAJOR
                and self.tile_cols == self.cols):
            return range(self.num_elements)
        return self._indices_iter()

    def _indices_iter(self) -> Iterator[int]:
        for ti, tj in self.tiles():
            yield from self.tile_elements(ti, tj)

    def descriptor(self) -> tuple:
        """Hashable description used in stream signatures."""
        return ("matrix", self.rows, self.cols, self.tile_rows,
                self.tile_cols, self.tile_order.value, self.elem_order.value)

    def transposed(self) -> "MatrixSchedule":
        """The schedule that streams A^T in the same physical order.

        Streaming A in tiles by rows, row-major elements, is the same wire
        traffic as streaming A^T in tiles by columns, column-major — the
        trick that lets BICG feed one read of A to both GEMV and GEMV^T.
        """
        flip_tile = (TileOrder.BY_COLS if self.tile_order is TileOrder.BY_ROWS
                     else TileOrder.BY_ROWS)
        flip_elem = (ElementOrder.COL_MAJOR
                     if self.elem_order is ElementOrder.ROW_MAJOR
                     else ElementOrder.ROW_MAJOR)
        return MatrixSchedule(self.cols, self.rows, self.tile_cols,
                              self.tile_rows, flip_tile, flip_elem)


@dataclass(frozen=True)
class VectorSchedule:
    """A vector stream: ``n`` elements in blocks, optionally replayed.

    ``replay`` > 1 means the entire vector is streamed that many times
    (the x-replay of the tiles-by-rows GEMV).
    """

    n: int
    block: int = 0           # 0 means "whole vector"
    replay: int = 1

    def __post_init__(self):
        if self.n < 1:
            raise ValueError("vector length must be positive")
        if self.block < 0 or self.replay < 1:
            raise ValueError("invalid block/replay")
        if self.block and self.n % self.block:
            raise ValueError(
                f"vector of {self.n} not divisible into blocks of {self.block}")

    @property
    def total_elements(self) -> int:
        return self.n * self.replay

    def indices(self) -> Iterator[int]:
        for _ in range(self.replay):
            yield from range(self.n)

    def descriptor(self) -> tuple:
        return ("vector", self.n, self.block, self.replay)


def row_tiles(rows: int, cols: int, tile_rows: int, tile_cols: int,
              elem_order: ElementOrder = ElementOrder.ROW_MAJOR) -> MatrixSchedule:
    """Shorthand for a tiles-by-rows schedule."""
    return MatrixSchedule(rows, cols, tile_rows, tile_cols,
                          TileOrder.BY_ROWS, elem_order)


def col_tiles(rows: int, cols: int, tile_rows: int, tile_cols: int,
              elem_order: ElementOrder = ElementOrder.ROW_MAJOR) -> MatrixSchedule:
    """Shorthand for a tiles-by-columns schedule."""
    return MatrixSchedule(rows, cols, tile_rows, tile_cols,
                          TileOrder.BY_COLS, elem_order)
