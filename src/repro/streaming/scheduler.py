"""General MDAG composition planning — the paper's stated future work.

Sec. V of the paper analyses compositions case by case and leaves "a full
general case analysis of MDAGs, that could help the user in deriving valid
FBLAS compositions" as future work.  This module implements that analysis:
given any MDAG, :func:`plan_composition` produces a :class:`CompositionPlan`
that is guaranteed valid, by combining the paper's two remedies for
reconvergent (non-multitree) graphs:

a) **channel sizing** — if the caller supplies the producer's reordering
   window for an edge (e.g. the ATAX bound N*T_N) and it fits the on-chip
   buffer budget, the edge's FIFO is deepened and the composition stays
   fully streamed;
b) **splitting** — otherwise the graph is cut into *sequential components*:
   every edge entering a reconvergence vertex from a compute module is
   materialized through DRAM (a writer interface in one component, a
   reader in a later one), exactly how the paper splits GEMVER into
   GER->GER->GEMV^T followed by the final GEMV.

The resulting plan reports per-component subgraphs (each individually a
valid multitree), the required channel depths, the DRAM-materialized
edges, and the total off-chip I/O — so the cost of a plan can be compared
against the fully sequential host-layer execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from .mdag import MDAG


class PlanningError(ValueError):
    """Raised when no valid plan exists (semantically broken MDAGs)."""


@dataclass
class CompositionPlan:
    """A valid execution plan for an MDAG.

    Attributes
    ----------
    components:
        Node sets, in execution order; component k+1 starts after
        component k has drained to DRAM.
    materialized_edges:
        Edges replaced by a DRAM round trip (write in the producer's
        component, read in the consumer's).
    channel_depths:
        Required FIFO depth per remaining on-chip edge.
    sized_edges:
        Edges whose depth was raised to a reordering window (remedy a).
    """

    mdag: MDAG
    components: List[Set[str]]
    materialized_edges: List[Tuple[str, str]] = field(default_factory=list)
    channel_depths: Dict[Tuple[str, str], int] = field(default_factory=dict)
    sized_edges: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def num_components(self) -> int:
        return len(self.components)

    @property
    def fully_streamed(self) -> bool:
        return self.num_components == 1 and not self.materialized_edges

    def component_of(self, node: str) -> int:
        for i, comp in enumerate(self.components):
            if node in comp:
                return i
        raise KeyError(node)

    def io_operations(self) -> int:
        """Off-chip elements moved under this plan.

        Interface reads are deduplicated per distinct fan-out signature
        (see :meth:`MDAG.io_operations`).  Each materialized edge adds: a
        fresh read when its producer is an interface (the data already
        lives in DRAM), a write plus a (possibly replayed) read when both
        ends are compute modules.
        """
        total = self.mdag.io_operations()
        cut = set(self.materialized_edges)
        for u, v in self.materialized_edges:
            data = self.mdag.graph.edges[u, v]
            if self.mdag.kind(u) == "interface":
                # The read moves to a later component.  If a live sibling
                # edge shares the signature, the two can no longer share
                # one physical read: one extra read appears.  A cut edge
                # with no live sharer keeps its single (already counted)
                # read.
                sig = data["produces"]
                shared = any(
                    self.mdag.graph.edges[u, w]["produces"] == sig
                    and (u, w) not in cut
                    for w in self.mdag.graph.successors(u) if w != v)
                if shared:
                    total += data["consumes"].total
            elif self.mdag.kind(v) == "interface":
                pass                       # it was a write already
            else:
                total += (data["produces"].total + data["consumes"].total)
        return total

    def sequential_io_operations(self) -> int:
        """Off-chip elements if *every* edge went through DRAM (the
        host-layer execution: one kernel per module, all intermediates in
        memory, no shared reads)."""
        total = 0
        for u, v, data in self.mdag.graph.edges(data=True):
            ku, kv = self.mdag.kind(u), self.mdag.kind(v)
            if ku == "interface" and kv == "interface":
                # DRAM-to-DRAM copy: one read plus one write.
                total += data["produces"].total + data["consumes"].total
            elif ku == "interface":
                total += data["consumes"].total      # one read per consumer
            elif kv == "interface":
                total += data["produces"].total      # one write
            else:
                total += (data["produces"].total
                          + data["consumes"].total)  # round trip
        return total

    def io_reduction(self) -> float:
        return self.sequential_io_operations() / self.io_operations()

    def describe(self) -> str:
        lines = [f"composition plan: {self.num_components} component(s)"]
        for i, comp in enumerate(self.components):
            lines.append(f"  component {i}: {sorted(comp)}")
        for u, v in self.materialized_edges:
            lines.append(f"  DRAM round trip: {u} -> {v}")
        for u, v in self.sized_edges:
            lines.append(f"  sized channel:  {u} -> {v} "
                         f"(depth {self.channel_depths[(u, v)]})")
        lines.append(f"  off-chip I/O: {self.io_operations()} "
                     f"(host layer: {self.sequential_io_operations()})")
        return "\n".join(lines)


def plan_composition(mdag: MDAG,
                     windows: Optional[Dict[Tuple[str, str], int]] = None,
                     buffer_budget: int = 0) -> CompositionPlan:
    """Derive a valid plan for ``mdag``.

    Parameters
    ----------
    windows:
        Reordering window (elements) per edge, for reconvergent pairs the
        caller can bound — e.g. ``{("read_A", "gemv2"): n * tile_n}`` for
        ATAX.  Only consulted for edges involved in reconvergence.
    buffer_budget:
        On-chip elements available for channel sizing (remedy a).  Windows
        larger than the budget force a split (remedy b).

    Raises
    ------
    PlanningError
        If the MDAG has semantic edge errors (count/order mismatches,
        compute-module replay) or cycles — no amount of buffering or
        splitting fixes those.
    """
    windows = dict(windows or {})
    result = mdag.analyze()
    graph = mdag.graph
    cut: Set[Tuple[str, str]] = set()
    hard: List[str] = []
    for diag in result.diagnostics:
        if diag.code == "FB004":
            hard.append(diag.message)
        elif diag.code in ("FB001", "FB005") and diag.edge:
            u, v = diag.edge
            produces = graph.edges[u, v]["produces"]
            consumes = graph.edges[u, v]["consumes"]
            # A DRAM round trip can re-order a stream and replay it any
            # whole number of times — so such edges are *fixable* by
            # mandatory materialization.  Anything else is semantic.
            if consumes.total % max(produces.total, 1) == 0:
                cut.add((u, v))
            else:
                hard.append(diag.message)
    if hard:
        raise PlanningError(
            "MDAG has semantic errors that planning cannot fix: "
            + "; ".join(hard))

    depths: Dict[Tuple[str, str], int] = {
        (u, v): data["depth"] for u, v, data in graph.edges(data=True)}
    sized: List[Tuple[str, str]] = []
    budget_left = buffer_budget

    # Work on a copy so channel sizing can retire reconvergent pairs.
    work = MDAG()
    work.graph = graph.copy()
    work.graph.remove_edges_from(cut)

    while True:
        pairs = work.reconvergent_pairs()
        if not pairs:
            break
        a, b = pairs[0]
        resolved = False
        # Remedy (a): size one incoming edge of b whose window is known.
        for u in list(work.graph.predecessors(b)):
            win = windows.get((u, b))
            if win is not None and win <= budget_left:
                depths[(u, b)] = max(depths.get((u, b), 0), win)
                sized.append((u, b))
                budget_left -= win
                # A sized edge no longer participates in the stall cycle;
                # model that by treating it as resolved for analysis.
                work.graph.remove_edge(u, b)
                resolved = True
                break
        if resolved:
            continue
        # Remedy (b): materialize every incoming edge of the reconvergence
        # vertex through DRAM, pushing it (and its descendants) into a
        # later sequential component.
        for u in list(work.graph.predecessors(b)):
            cut.add((u, b))
            work.graph.remove_edge(u, b)

    # Stage assignment: a node starts one stage after any producer whose
    # edge was materialized; on-chip edges keep producer and consumer in
    # the same stage.
    stages: Dict[str, int] = {}
    for node in nx.topological_sort(graph):
        stage = 0
        for u in graph.predecessors(node):
            base = stages[u]
            stage = max(stage, base + 1 if (u, node) in cut else base)
        stages[node] = stage
    # Any surviving on-chip edge that now spans two sequential components
    # must also be materialized: its producer's component drains before
    # the consumer's starts, so the data has to persist in DRAM.
    for u, v in graph.edges():
        if (u, v) not in cut and stages[u] != stages[v]:
            cut.add((u, v))
    num_stages = max(stages.values(), default=0) + 1
    components: List[Set[str]] = [set() for _ in range(num_stages)]
    for node, stage in stages.items():
        components[stage].add(node)

    plan = CompositionPlan(mdag=mdag, components=components,
                           materialized_edges=sorted(cut),
                           channel_depths=depths, sized_edges=sized)
    _check_plan(mdag, plan)
    return plan


def _check_plan(mdag: MDAG, plan: CompositionPlan) -> None:
    """Post-condition: every component, with cut edges removed and sized
    edges discounted, is a valid multitree."""
    g = mdag.graph.copy()
    g.remove_edges_from(plan.materialized_edges)
    g.remove_edges_from(plan.sized_edges)
    for comp in plan.components:
        sub = g.subgraph(comp)
        helper = MDAG()
        helper.graph = nx.DiGraph(sub)
        if helper._multipath_pairs():       # pragma: no cover - invariant
            raise PlanningError(
                f"internal error: component {sorted(comp)} is not a "
                "multitree after planning")
