"""Module DAG (MDAG) construction and validity analysis (Sec. V).

A computation is a DAG whose vertices are hardware modules — *interface*
modules (off-chip memory access, drawn as circles in the paper) and
*compute* modules (FBLAS routines, rectangles) — and whose edges are FIFO
channels.  The analysis answers, statically, the paper's validity
questions:

* every edge must move the same number of elements in the same order on
  both ends (checked against :class:`StreamSignature` pairs);
* a *multitree* MDAG (at most one path between any pair of vertices) with
  valid edges is always valid;
* if two vertices are joined by two or more vertex-disjoint paths, the
  composition can stall forever unless some channel is sized to buffer the
  producer's full reordering window (the ATAX case) — such pairs are
  reported along with the edges that need explicit sizing.

The checks themselves live in :mod:`repro.analysis` as analyzer passes
with stable diagnostic codes; :meth:`MDAG.validate` is a thin adapter
that re-expresses those diagnostics as the classic
:class:`ValidationReport`.  The *dynamic* counterpart of this analysis is
the simulator's :class:`~repro.fpga.engine.DeadlockError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..fpga.channel import DEFAULT_CHANNEL_DEPTH
from ..fpga.errors import ReproError
from .interface import StreamSignature

__all__ = [
    "DEFAULT_CHANNEL_DEPTH", "EdgeIssue", "MDAG", "MDAGError",
    "ValidationReport",
]

#: Analyzer code -> the legacy EdgeIssue ``kind`` vocabulary.
_CODE_TO_KIND = {
    "FB001": "signature",
    "FB002": "buffering",
    "FB003": "buffering",
    "FB004": "cycle",
    "FB005": "replay",
}


class MDAGError(ReproError, ValueError):
    """Raised on malformed MDAG construction.

    Part of the :class:`~repro.fpga.errors.ReproError` hierarchy; keeps
    ``ValueError`` as a base for backwards compatibility with callers
    that predate the consolidation.
    """


@dataclass
class EdgeIssue:
    """One validity problem found by :meth:`MDAG.validate`."""

    kind: str            # "signature", "replay", "cycle", "buffering"
    detail: str
    edge: Optional[Tuple[str, str]] = None
    #: Stable diagnostic code (see :data:`repro.analysis.CODES`).
    code: str = ""


@dataclass
class ValidationReport:
    """Outcome of the static MDAG analysis."""

    valid: bool
    is_multitree: bool
    issues: List[EdgeIssue] = field(default_factory=list)
    #: Vertex pairs joined by >= 2 vertex-disjoint paths; these make the
    #: MDAG a non-multitree and require explicit channel sizing.
    reconvergent_pairs: List[Tuple[str, str]] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.valid


class MDAG:
    """A module DAG under construction."""

    def __init__(self):
        self.graph = nx.DiGraph()

    # -- construction -------------------------------------------------------
    def add_interface(self, name: str) -> str:
        """Add an interface module (off-chip memory reader/writer)."""
        return self._add(name, "interface")

    def add_module(self, name: str) -> str:
        """Add a compute module (an FBLAS routine instance)."""
        return self._add(name, "compute")

    def _add(self, name: str, kind: str) -> str:
        if name in self.graph:
            raise MDAGError(f"duplicate module name {name!r}")
        self.graph.add_node(name, kind=kind)
        return name

    def connect(self, src: str, dst: str, produces: StreamSignature,
                consumes: StreamSignature,
                depth: int = DEFAULT_CHANNEL_DEPTH) -> None:
        """Add a FIFO edge carrying ``produces`` into ``consumes``."""
        for node in (src, dst):
            if node not in self.graph:
                raise MDAGError(f"unknown module {node!r}")
        if self.graph.has_edge(src, dst):
            raise MDAGError(f"duplicate edge {src!r} -> {dst!r}")
        self.graph.add_edge(src, dst, produces=produces, consumes=consumes,
                            depth=depth)

    def kind(self, name: str) -> str:
        return self.graph.nodes[name]["kind"]

    # -- analysis -------------------------------------------------------------
    def is_multitree(self) -> bool:
        """True if there is at most one path between any pair of vertices."""
        return not self._multipath_pairs()

    def _multipath_pairs(self) -> List[Tuple[str, str]]:
        """Vertex pairs with more than one (not necessarily disjoint) path."""
        from ..analysis.graphs import multipath_pairs
        return multipath_pairs(self.graph)

    def reconvergent_pairs(self) -> List[Tuple[str, str]]:
        """Pairs joined by >= 2 internally vertex-disjoint paths.

        These are the pairs the paper singles out (Sec. V-B): data fans out
        at the first vertex and rejoins at the second, so one branch can
        only progress if the other's data is buffered in a channel.
        """
        from ..analysis.graphs import reconvergent_pairs
        return reconvergent_pairs(self.graph)

    def analyze(self, windows: Optional[Dict[Tuple[str, str], int]] = None):
        """Run the full pass-based analyzer; returns an
        :class:`repro.analysis.AnalysisResult` with FBxxx diagnostics.

        ``windows`` maps edges to reordering windows (elements); with them
        the reconvergence check proves depth sufficiency (FB008) or the
        deadlock (FB003) instead of merely flagging the pair (FB002).
        """
        from ..analysis import analyze_mdag
        return analyze_mdag(self, windows=windows)

    def validate(self,
                 windows: Optional[Dict[Tuple[str, str], int]] = None,
                 ) -> ValidationReport:
        """Run the static analysis; adapter over :meth:`analyze`.

        Without ``windows`` every reconvergent pair renders the MDAG
        invalid (the paper's dynamic-problem-size verdict); with them, a
        pair whose channel holds the full window is accepted.
        """
        result = self.analyze(windows=windows)
        issues = [
            EdgeIssue(_CODE_TO_KIND[d.code], d.message, d.edge, code=d.code)
            for d in result.diagnostics if d.code in _CODE_TO_KIND
            and d.severity >= d.severity.WARNING
        ]
        reconv = (self.reconvergent_pairs()
                  if nx.is_directed_acyclic_graph(self.graph) else [])
        multitree = not self._multipath_pairs()
        valid = result.ok and not any(
            i.kind == "buffering" for i in issues)
        return ValidationReport(valid=valid, is_multitree=multitree,
                                issues=issues, reconvergent_pairs=reconv)

    def required_depth(self, u: str, v: str, window: int) -> None:
        """Record that edge (u, v) needs at least ``window`` slots.

        Raising the stored depth turns a reconvergent composition into a
        valid one *for the given problem size* — exactly remedy (a) of
        Sec. V-B.  The simulator builders read this attribute.
        """
        if not self.graph.has_edge(u, v):
            raise MDAGError(f"no edge {u!r} -> {v!r}")
        if window < 1:
            raise MDAGError("window must be positive")
        data = self.graph.edges[u, v]
        data["depth"] = max(data["depth"], window)

    def depth(self, u: str, v: str) -> int:
        return self.graph.edges[u, v]["depth"]

    # -- reporting -------------------------------------------------------------
    def io_operations(self) -> int:
        """Total off-chip elements moved.

        A read interface that fans the *same* stream out to several
        consumers reads DRAM once (the BICG trick); distinct signatures
        from one interface cost one read each.  Writes count per edge.
        """
        total = 0
        for node, nd in self.graph.nodes(data=True):
            if nd["kind"] != "interface":
                continue
            distinct = {self.graph.edges[node, v]["produces"]
                        for v in self.graph.successors(node)}
            total += sum(sig.total for sig in distinct)
            for u in self.graph.predecessors(node):
                total += self.graph.edges[u, node]["consumes"].total
        return total

    def describe(self) -> str:
        lines = ["MDAG:"]
        for n, d in self.graph.nodes(data=True):
            lines.append(f"  [{d['kind']:9s}] {n}")
        for u, v, d in self.graph.edges(data=True):
            lines.append(f"  {u} -> {v} ({d['produces'].total} elems, "
                         f"depth {d['depth']})")
        return "\n".join(lines)
