"""Module DAG (MDAG) construction and validity analysis (Sec. V).

A computation is a DAG whose vertices are hardware modules — *interface*
modules (off-chip memory access, drawn as circles in the paper) and
*compute* modules (FBLAS routines, rectangles) — and whose edges are FIFO
channels.  The analysis implemented here answers, statically, the paper's
validity questions:

* every edge must move the same number of elements in the same order on
  both ends (checked against :class:`StreamSignature` pairs);
* a *multitree* MDAG (at most one path between any pair of vertices) with
  valid edges is always valid;
* if two vertices are joined by two or more vertex-disjoint paths, the
  composition can stall forever unless some channel is sized to buffer the
  producer's full reordering window (the ATAX case) — such pairs are
  reported along with the edges that need explicit sizing.

The *dynamic* counterpart of this analysis is the simulator's
:class:`~repro.fpga.engine.DeadlockError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from .interface import StreamSignature

DEFAULT_CHANNEL_DEPTH = 64


class MDAGError(ValueError):
    """Raised on malformed MDAG construction."""


@dataclass
class EdgeIssue:
    """One validity problem found by :meth:`MDAG.validate`."""

    kind: str            # "signature", "replay", "cycle", "buffering"
    detail: str
    edge: Optional[Tuple[str, str]] = None


@dataclass
class ValidationReport:
    """Outcome of the static MDAG analysis."""

    valid: bool
    is_multitree: bool
    issues: List[EdgeIssue] = field(default_factory=list)
    #: Vertex pairs joined by >= 2 vertex-disjoint paths; these make the
    #: MDAG a non-multitree and require explicit channel sizing.
    reconvergent_pairs: List[Tuple[str, str]] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.valid


class MDAG:
    """A module DAG under construction."""

    def __init__(self):
        self.graph = nx.DiGraph()

    # -- construction -------------------------------------------------------
    def add_interface(self, name: str) -> str:
        """Add an interface module (off-chip memory reader/writer)."""
        return self._add(name, "interface")

    def add_module(self, name: str) -> str:
        """Add a compute module (an FBLAS routine instance)."""
        return self._add(name, "compute")

    def _add(self, name: str, kind: str) -> str:
        if name in self.graph:
            raise MDAGError(f"duplicate module name {name!r}")
        self.graph.add_node(name, kind=kind)
        return name

    def connect(self, src: str, dst: str, produces: StreamSignature,
                consumes: StreamSignature,
                depth: int = DEFAULT_CHANNEL_DEPTH) -> None:
        """Add a FIFO edge carrying ``produces`` into ``consumes``."""
        for node in (src, dst):
            if node not in self.graph:
                raise MDAGError(f"unknown module {node!r}")
        if self.graph.has_edge(src, dst):
            raise MDAGError(f"duplicate edge {src!r} -> {dst!r}")
        self.graph.add_edge(src, dst, produces=produces, consumes=consumes,
                            depth=depth)

    def kind(self, name: str) -> str:
        return self.graph.nodes[name]["kind"]

    # -- analysis -------------------------------------------------------------
    def is_multitree(self) -> bool:
        """True if there is at most one path between any pair of vertices."""
        return not self._multipath_pairs()

    def _multipath_pairs(self) -> List[Tuple[str, str]]:
        """Vertex pairs with more than one (not necessarily disjoint) path."""
        if not nx.is_directed_acyclic_graph(self.graph):
            return []
        order = list(nx.topological_sort(self.graph))
        pairs = []
        for src in order:
            counts: Dict[str, int] = {src: 1}
            for v in order:
                if v == src or v not in self.graph:
                    continue
                total = sum(counts.get(u, 0)
                            for u in self.graph.predecessors(v))
                if total:
                    counts[v] = total
                    if total > 1:
                        pairs.append((src, v))
        return pairs

    def reconvergent_pairs(self) -> List[Tuple[str, str]]:
        """Pairs joined by >= 2 internally vertex-disjoint paths.

        These are the pairs the paper singles out (Sec. V-B): data fans out
        at the first vertex and rejoins at the second, so one branch can
        only progress if the other's data is buffered in a channel.
        """
        out = []
        for u, v in self._multipath_pairs():
            try:
                k = len(list(nx.node_disjoint_paths(self.graph, u, v)))
            except nx.NetworkXNoPath:  # pragma: no cover - defensive
                continue
            if k >= 2:
                out.append((u, v))
        return out

    def validate(self) -> ValidationReport:
        """Run the full static analysis."""
        issues: List[EdgeIssue] = []

        if not nx.is_directed_acyclic_graph(self.graph):
            issues.append(EdgeIssue("cycle", "MDAG contains a cycle"))
            return ValidationReport(valid=False, is_multitree=False,
                                    issues=issues)

        for u, v, data in self.graph.edges(data=True):
            produces: StreamSignature = data["produces"]
            consumes: StreamSignature = data["consumes"]
            reason = produces.mismatch_reason(consumes)
            if reason is None:
                continue
            # Replay between two *compute* modules is never allowed: a
            # compute module cannot re-emit past data (Sec. V).  An
            # interface module can, by re-reading DRAM.
            if (self.kind(u) == "compute" and
                    produces.total < consumes.total):
                issues.append(EdgeIssue(
                    "replay",
                    f"{u!r} -> {v!r}: consumer requires replayed data "
                    f"({consumes.total} elements) that compute module "
                    f"{u!r} only produces once ({produces.total}); "
                    "replay is only possible from interface modules",
                    (u, v)))
            else:
                issues.append(EdgeIssue(
                    "signature", f"{u!r} -> {v!r}: {reason}", (u, v)))

        reconv = self.reconvergent_pairs()
        multitree = not self._multipath_pairs()
        for u, v in reconv:
            # The composition can still be made valid by sizing a channel
            # to the producer's reordering window; we flag the pair and let
            # the caller bring the data-size-specific bound.
            issues.append(EdgeIssue(
                "buffering",
                f"two vertex-disjoint paths from {u!r} to {v!r}: valid only "
                "if a channel on one branch buffers the full reordering "
                "window (invalid for dynamic problem sizes)",
                (u, v)))

        valid = not any(i.kind in ("signature", "replay", "cycle")
                        for i in issues) and not reconv
        return ValidationReport(valid=valid, is_multitree=multitree,
                                issues=issues, reconvergent_pairs=reconv)

    def required_depth(self, u: str, v: str, window: int) -> None:
        """Record that edge (u, v) needs at least ``window`` slots.

        Raising the stored depth turns a reconvergent composition into a
        valid one *for the given problem size* — exactly remedy (a) of
        Sec. V-B.  The simulator builders read this attribute.
        """
        if not self.graph.has_edge(u, v):
            raise MDAGError(f"no edge {u!r} -> {v!r}")
        if window < 1:
            raise MDAGError("window must be positive")
        data = self.graph.edges[u, v]
        data["depth"] = max(data["depth"], window)

    def depth(self, u: str, v: str) -> int:
        return self.graph.edges[u, v]["depth"]

    # -- reporting -------------------------------------------------------------
    def io_operations(self) -> int:
        """Total off-chip elements moved.

        A read interface that fans the *same* stream out to several
        consumers reads DRAM once (the BICG trick); distinct signatures
        from one interface cost one read each.  Writes count per edge.
        """
        total = 0
        for node, nd in self.graph.nodes(data=True):
            if nd["kind"] != "interface":
                continue
            distinct = {self.graph.edges[node, v]["produces"]
                        for v in self.graph.successors(node)}
            total += sum(sig.total for sig in distinct)
            for u in self.graph.predecessors(node):
                total += self.graph.edges[u, node]["consumes"].total
        return total

    def describe(self) -> str:
        lines = ["MDAG:"]
        for n, d in self.graph.nodes(data=True):
            lines.append(f"  [{d['kind']:9s}] {n}")
        for u, v, d in self.graph.edges(data=True):
            lines.append(f"  {u} -> {v} ({d['produces'].total} elems, "
                         f"depth {d['depth']})")
        return "\n".join(lines)
