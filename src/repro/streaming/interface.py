"""Stream signatures: what a module port produces or consumes.

An edge between modules A and B is *valid* (Sec. V) iff

1. the number of elements produced equals the number consumed, and
2. the production order equals the consumption order.

A signature captures both: a total element count and a hashable order
descriptor (built from the tiling schedules of :mod:`repro.streaming.tiling`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .tiling import MatrixSchedule, VectorSchedule


@dataclass(frozen=True)
class StreamSignature:
    """Signature of one streaming port."""

    total: int
    order: Tuple

    def compatible_with(self, other: "StreamSignature") -> bool:
        """True when this producer signature can feed ``other``."""
        return self.total == other.total and self.order == other.order

    def mismatch_reason(self, other: "StreamSignature") -> Optional[str]:
        """Explain why the edge would be invalid, or None if valid."""
        if self.total != other.total:
            return (f"element count mismatch: produces {self.total}, "
                    f"consumes {other.total}")
        if self.order != other.order:
            return f"order mismatch: {self.order} vs {other.order}"
        return None


def matrix_stream(schedule: MatrixSchedule, replay: int = 1) -> StreamSignature:
    """Signature of a matrix streamed in ``schedule`` order."""
    if replay < 1:
        raise ValueError("replay must be >= 1")
    return StreamSignature(total=schedule.num_elements * replay,
                           order=schedule.descriptor() + (replay,))


def vector_stream(n: int, block: int = 0, replay: int = 1) -> StreamSignature:
    """Signature of an n-element vector streamed in blocks, replayed."""
    sched = VectorSchedule(n, block, replay)
    return StreamSignature(total=sched.total_elements,
                           order=sched.descriptor())


def scalar_stream() -> StreamSignature:
    """Signature of a single scalar result (e.g. DOT output)."""
    return StreamSignature(total=1, order=("scalar",))
