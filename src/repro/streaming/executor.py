"""Execute an MDAG composition plan on the simulator.

:mod:`repro.streaming.scheduler` decides *how* to run a composition
(channel depths, sequential components, DRAM round trips); this module
actually runs it.  The caller attaches *bindings* to the MDAG's nodes —

* a compute node binds a kernel factory taking ``(inputs, outputs)``
  channel dicts keyed by port name, plus a pipeline latency;
* a read interface binds a DRAM buffer (with optional streaming order and
  replay) feeding its out-edges;
* a write interface binds a destination buffer draining its in-edge —

and :func:`execute_plan` builds one engine per plan component, wiring
on-chip edges as FIFO channels at the planned depths, fanning shared
interface reads out through duplicate kernels, materializing cut edges
through scratch DRAM buffers, and running the components in order.

This is the machinery that turns the paper's "derive valid FBLAS
compositions" future work into an end-to-end flow: MDAG in, results and a
cycle/I-O report out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..fpga.engine import Engine, SimReport
from ..fpga.errors import ReproError
from ..fpga.memory import DramBuffer, DramModel, read_kernel, write_kernel
from ..fpga.util import duplicate_kernel
from ..plan import (
    PlanCache,
    PlanIR,
    composition_from_plan,
    mdag_fingerprint,
    plan_from_composition,
    plan_from_mdag,
)
from ..telemetry.ledger import run_scope as _ledger_scope
from ..telemetry.runtime import active as _telemetry_active
from ..telemetry.runtime import span as _telemetry_span
from .mdag import MDAG, MDAGError
from .scheduler import CompositionPlan


class ExecutionError(ReproError):
    """Raised when an MDAG is not fully bound or bindings are malformed."""


@dataclass
class ComputeBinding:
    """Kernel factory for a compute node.

    ``factory(inputs, outputs)`` receives dicts of channels keyed by the
    port names used in :meth:`BoundMDAG.connect`.
    """

    factory: Callable[[Dict, Dict], object]
    latency: int = 1


@dataclass
class ReadBinding:
    """DRAM source for a read-interface node (one signature, any fanout)."""

    buffer: DramBuffer
    width: int = 1
    order: Optional[Callable[[], Iterable[int]]] = None   # fresh iterator
    repeat: int = 1


@dataclass
class WriteBinding:
    """DRAM sink for a write-interface node (single in-edge)."""

    buffer: DramBuffer
    count: int
    width: int = 1
    order: Optional[Callable[[], Iterable[int]]] = None


class BoundMDAG(MDAG):
    """An MDAG whose edges carry port names and whose nodes carry bindings."""

    def __init__(self):
        super().__init__()
        self.bindings: Dict[str, object] = {}

    def bind(self, node: str, binding) -> None:
        if node not in self.graph:
            raise MDAGError(f"unknown node {node!r}")
        kind = self.kind(node)
        if kind == "compute" and not isinstance(binding, ComputeBinding):
            raise ExecutionError(
                f"{node!r} is a compute node; bind a ComputeBinding")
        if kind == "interface" and not isinstance(
                binding, (ReadBinding, WriteBinding)):
            raise ExecutionError(
                f"{node!r} is an interface; bind a Read/WriteBinding")
        self.bindings[node] = binding

    def connect(self, src: str, dst: str, produces, consumes,
                depth: int = 64, src_port: str = "out",
                dst_port: str = "in") -> None:
        super().connect(src, dst, produces, consumes, depth)
        self.graph.edges[src, dst]["src_port"] = src_port
        self.graph.edges[src, dst]["dst_port"] = dst_port


@dataclass
class ExecutionResult:
    """Outcome of running a plan."""

    plan: CompositionPlan
    reports: List[SimReport]
    io_elements: int
    #: Per-component recovery outcomes (dicts) when ``execute_plan`` ran
    #: with a recovery policy; None otherwise.
    recovery: Optional[List[dict]] = None
    #: The compiled :class:`~repro.plan.PlanIR` the run executed from
    #: (None only when the caller handed in a raw ``CompositionPlan``).
    plan_ir: Optional[PlanIR] = None

    @property
    def cycles(self) -> int:
        return sum(r.cycles for r in self.reports)

    @property
    def recovered(self) -> bool:
        return bool(self.recovery) and any(r["recovered"]
                                           for r in self.recovery)


def execute_plan(mdag: BoundMDAG, mem: DramModel,
                 plan=None,
                 windows=None, buffer_budget: int = 0,
                 mode: str = "event", recovery=None,
                 schedule_cache: Optional[dict] = None,
                 plan_cache: Optional[dict] = None) -> ExecutionResult:
    """Plan (unless given) and run a bound MDAG on ``mem``.

    ``plan`` may be a pre-compiled :class:`~repro.plan.PlanIR` (or a
    legacy :class:`CompositionPlan`); by default the MDAG is compiled
    through :func:`repro.plan.compile_plan` so every execution consumes
    the typed IR.  ``plan_cache`` (any mapping, e.g.
    :class:`repro.plan.PlanCache`) memoizes compiled plans on a
    structural MDAG fingerprint: a hit skips MDAG validation,
    scheduling, and pattern derivation entirely and replays the
    recorded decisions.

    ``mode`` selects the engine core (``"event"`` wake-list scheduler,
    the ``"dense"`` reference loop, ``"bulk"`` — event stepping with
    the steady-state superstep fast path — or ``"certified"``, which
    requires the FB4xx rate analysis to certify each component up front
    and then replays steady windows without runtime probing) for every
    component run.  ``schedule_cache`` optionally shares certified
    :class:`~repro.analysis.StaticSchedule` artifacts across components
    and plans (keyed structurally); certified runs default to a
    per-plan cache.

    ``recovery`` (None, True, or a :class:`repro.faults.RetryPolicy`)
    runs every component under the recovery ladder: device memory is
    checkpointed at the component boundary (a quiescent point — no
    channels are live between components), transient faults retry the
    component from that checkpoint, and a watchdog trip demotes the
    engine tier for the re-attempt.  Outcomes are recorded per component
    in :attr:`ExecutionResult.recovery`.

    Under a telemetry session, each invocation is one ledger request:
    an ``execute_plan`` :class:`~repro.telemetry.ledger.RunRecord` is
    appended carrying the ``plan_key``, the structural MDAG fingerprint
    digest, the plan-cache hit/miss for this request, and the
    per-component recovery roll-up; every component's engine run
    becomes a child record under the same correlation id.
    """
    tel = _telemetry_active()
    if tel is None:
        return _execute_plan(mdag, mem, plan, windows, buffer_budget,
                             mode, recovery, schedule_cache, plan_cache,
                             None)
    cur = tel.spans.current()
    with _ledger_scope(tel.ledger, "execute_plan", engine_mode=mode,
                       label=cur.name if cur is not None else None) as lrec:
        return _execute_plan(mdag, mem, plan, windows, buffer_budget,
                             mode, recovery, schedule_cache, plan_cache,
                             lrec)


def _execute_plan(mdag: BoundMDAG, mem: DramModel, plan, windows,
                  buffer_budget: int, mode: str, recovery,
                  schedule_cache: Optional[dict],
                  plan_cache: Optional[dict],
                  lrec) -> ExecutionResult:
    """The :func:`execute_plan` body, with an optional ledger record to
    fill (``lrec`` is None exactly when no telemetry session is active)."""
    plan_ir: Optional[PlanIR] = None
    if plan is None:
        # The structural fingerprint doubles as the plan-cache key and
        # the ledger correlation fact, so compute it when either wants it.
        key = (mdag_fingerprint(mdag, windows, buffer_budget)
               if plan_cache is not None or lrec is not None else None)
        if lrec is not None:
            lrec.mdag_fingerprint = _fingerprint_digest(key)
        if plan_cache is not None:
            plan_ir = plan_cache.get(key)
            if lrec is not None:
                lrec.plan_cache = ({"hits": 1, "misses": 0}
                                   if plan_ir is not None
                                   else {"hits": 0, "misses": 1})
        if plan_ir is None:
            plan_ir = plan_from_mdag(
                mdag, windows=windows, buffer_budget=buffer_budget,
                device=getattr(mem, "device_label", None))
            if plan_cache is not None:
                plan_cache[key] = plan_ir
        plan = composition_from_plan(plan_ir, mdag)
    elif isinstance(plan, PlanIR):
        plan_ir = plan
        plan = composition_from_plan(plan_ir, mdag)
    else:
        # Legacy CompositionPlan handed in directly: record it in the
        # IR anyway so the result still carries the typed artifact.
        plan_ir = plan_from_composition(
            mdag, plan, device=getattr(mem, "device_label", None))
    _check_bound(mdag)
    io_before = mem.total_elements_moved
    cut = set(plan.materialized_edges)

    # Scratch DRAM buffers for materialized compute->compute edges.
    scratch: Dict[Tuple[str, str], DramBuffer] = {}
    for u, v in cut:
        if mdag.kind(u) == "compute":
            total = mdag.graph.edges[u, v]["produces"].total
            # float64 scratch holds either precision's values exactly;
            # consumers re-cast to their own dtype.
            scratch[(u, v)] = mem.allocate(
                f"_mat_{u}_{v}_{len(scratch)}", total, dtype=np.float64)

    if lrec is not None and plan_ir is not None:
        lrec.plan_key = plan_ir.plan_key

    if recovery is True:
        from ..faults.recovery import RetryPolicy
        recovery = RetryPolicy()
    if schedule_cache is None and mode == "certified":
        # A counting, named cache so per-plan certificate reuse shows up
        # in the metrics registry and the run ledger.
        schedule_cache = PlanCache(name="executor.schedule")

    reports: List[SimReport] = []
    recovery_log: Optional[List[dict]] = [] if recovery is not None else None
    with _telemetry_span("streaming.composition", cat="streaming",
                         components=len(plan.components),
                         materialized=len(cut)):
        for comp_idx, component in enumerate(plan.components):
            if recovery is None:
                _run_component(mdag, mem, plan, cut, scratch, component,
                               comp_idx, mode, reports, schedule_cache)
                continue
            from ..faults.recovery import (MemoryCheckpoint,
                                           run_with_recovery)
            ckpt = MemoryCheckpoint.capture(mem)
            out = run_with_recovery(
                lambda m, _c=component, _i=comp_idx: _run_component(
                    mdag, mem, plan, cut, scratch, _c, _i, m, reports,
                    schedule_cache),
                policy=recovery, mode=mode, restore=ckpt.restore)
            recovery_log.append(out.to_dict())

    if lrec is not None:
        lrec.cycles = sum(r.cycles for r in reports)
        if recovery_log:
            lrec.retries = sum(r["retries"] for r in recovery_log)
            lrec.demotions = sum(r["demotions"] for r in recovery_log)
            lrec.recovery = {"components": list(recovery_log)}
    return ExecutionResult(plan=plan, reports=reports,
                           io_elements=mem.total_elements_moved - io_before,
                           recovery=recovery_log, plan_ir=plan_ir)


def _fingerprint_digest(key) -> Optional[str]:
    """Short stable hex digest of a structural MDAG fingerprint tuple."""
    if key is None:
        return None
    import hashlib
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]


def _run_component(mdag: BoundMDAG, mem: DramModel, plan: CompositionPlan,
                   cut, scratch: Dict[Tuple[str, str], DramBuffer],
                   component, comp_idx: int, mode: str,
                   reports: List[SimReport],
                   schedule_cache: Optional[dict] = None) -> None:
    """Build and run the engine for one plan component."""
    with _telemetry_span(f"streaming.component[{comp_idx}]",
                         cat="streaming", component=comp_idx,
                         nodes=sorted(component)):
        eng = Engine(memory=mem, mode=mode, schedule_cache=schedule_cache)
        in_chans: Dict[str, Dict[str, object]] = {n: {} for n in component}
        out_chans: Dict[str, Dict[str, object]] = {n: {} for n in component}
        # interface fanout bookkeeping: read node -> list of its channels
        read_fanout: Dict[str, List] = {}

        for u, v, data in mdag.graph.edges(data=True):
            produces = data["produces"]
            if (u, v) in cut:
                # Producer side: drain into DRAM in the producer's
                # component (compute producers only; interface producers
                # simply re-read in the consumer's component).
                if (mdag.kind(u) == "compute"
                        and u in component):
                    ch = eng.channel(f"cut_{u}_{v}",
                                     max(64, 2 * _width_of(mdag, u)))
                    out_chans[u][data["src_port"]] = ch
                    buf = scratch[(u, v)]
                    eng.add_kernel(f"write_{u}_{v}", write_kernel(
                        mem, buf, ch, produces.total,
                        _width_of(mdag, u)))
                # Consumer side: read back in the consumer's component.
                if v in component:
                    ch = eng.channel(f"mat_{u}_{v}",
                                     max(64, 2 * _width_of(mdag, v)))
                    in_chans[v][data["dst_port"]] = ch
                    consumes = data["consumes"]
                    if mdag.kind(u) == "compute":
                        src_buf = scratch[(u, v)]
                        repeat = max(1, consumes.total // produces.total)
                        eng.add_kernel(f"read_{u}_{v}", read_kernel(
                            mem, src_buf, ch, _width_of(mdag, v),
                            repeat=repeat))
                    else:
                        binding = mdag.bindings[u]
                        eng.add_kernel(f"read_{u}_{v}", read_kernel(
                            mem, binding.buffer, ch, binding.width,
                            order=(binding.order() if binding.order
                                   else None),
                            repeat=binding.repeat))
                continue
            if u not in component and v not in component:
                continue
            if u not in component or v not in component:  # pragma: no cover
                raise ExecutionError(
                    f"on-chip edge {u!r}->{v!r} spans components; "
                    "plan is inconsistent")
            depth = plan.channel_depths.get((u, v), data["depth"])
            ch = eng.channel(f"{u}__{v}", max(depth, 4))
            if mdag.kind(u) == "interface":
                read_fanout.setdefault(u, []).append((ch, produces))
            else:
                out_chans[u][data["src_port"]] = ch
            if mdag.kind(v) == "interface":
                in_chans[v][data["dst_port"]] = ch
            else:
                in_chans[v][data["dst_port"]] = ch

        # Instantiate node kernels.
        for node in component:
            kind = mdag.kind(node)
            binding = mdag.bindings.get(node)
            if kind == "compute":
                eng.add_kernel(node, binding.factory(
                    in_chans[node], out_chans[node]),
                    latency=binding.latency)
            elif isinstance(binding, ReadBinding):
                chans = read_fanout.get(node, [])
                if not chans:
                    continue          # all of its edges were materialized
                total = chans[0][1].total
                if len(chans) == 1:
                    eng.add_kernel(f"read_{node}", read_kernel(
                        mem, binding.buffer, chans[0][0], binding.width,
                        order=binding.order() if binding.order else None,
                        repeat=binding.repeat))
                else:
                    feed = eng.channel(f"{node}__fan",
                                       max(64, 2 * binding.width))
                    eng.add_kernel(f"read_{node}", read_kernel(
                        mem, binding.buffer, feed, binding.width,
                        order=binding.order() if binding.order else None,
                        repeat=binding.repeat))
                    eng.add_kernel(f"fan_{node}", duplicate_kernel(
                        feed, [c for c, _s in chans], total,
                        binding.width))
            elif isinstance(binding, WriteBinding):
                chans = list(in_chans[node].values())
                if not chans:
                    continue
                if len(chans) != 1:
                    raise ExecutionError(
                        f"write interface {node!r} must have one in-edge")
                eng.add_kernel(f"write_{node}", write_kernel(
                    mem, binding.buffer, chans[0], binding.count,
                    binding.width,
                    order=binding.order() if binding.order else None))
        reports.append(eng.run())


def _width_of(mdag: BoundMDAG, node: str) -> int:
    binding = mdag.bindings.get(node)
    return getattr(binding, "width", 1) or 1


def _check_bound(mdag: BoundMDAG) -> None:
    missing = [n for n in mdag.graph.nodes if n not in mdag.bindings]
    if missing:
        raise ExecutionError(f"unbound nodes: {sorted(missing)}")
