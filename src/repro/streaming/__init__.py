"""Streaming module framework: tiling schedules, signatures, MDAG analysis."""

from .interface import StreamSignature, matrix_stream, scalar_stream, vector_stream
from .mdag import (
    DEFAULT_CHANNEL_DEPTH,
    EdgeIssue,
    MDAG,
    MDAGError,
    ValidationReport,
)
from .executor import (
    BoundMDAG,
    ComputeBinding,
    ExecutionError,
    ExecutionResult,
    ReadBinding,
    WriteBinding,
    execute_plan,
)
from .scheduler import CompositionPlan, PlanningError, plan_composition
from .tiling import (
    ElementOrder,
    MatrixSchedule,
    TileOrder,
    VectorSchedule,
    col_tiles,
    row_tiles,
)

__all__ = [
    "BoundMDAG", "CompositionPlan", "ComputeBinding",
    "DEFAULT_CHANNEL_DEPTH", "EdgeIssue", "ElementOrder", "ExecutionError",
    "ExecutionResult", "MDAG", "MDAGError", "MatrixSchedule",
    "PlanningError", "ReadBinding", "StreamSignature", "TileOrder",
    "ValidationReport", "VectorSchedule", "WriteBinding", "col_tiles",
    "execute_plan", "matrix_stream", "plan_composition", "row_tiles",
    "scalar_stream", "vector_stream",
]
