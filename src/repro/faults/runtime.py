"""Ambient fault-injection context — the leaf the engine may import.

This module deliberately imports nothing from the rest of the package
(or from :mod:`repro.fpga`): the engine consults :func:`active` on every
run, so this must stay import-cycle-free and dirt cheap when no faults
are armed.

Usage::

    from repro import faults

    with faults.inject(plan):
        engine_a.run()      # faults of ``plan`` armed
        engine_b.run()      # same plan, shared one-shot ledger

The :class:`InjectionContext` carries the *one-shot ledger*: a fault
record that has fired is consumed for the whole context, so a retry of
the same computation inside the context does **not** replay it — the
transient-SEU semantics the recovery policies rely on.  (Bandwidth
throttles are windows in simulated time, not one-shot events, and are
never ledgered.)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

__all__ = ["InjectionContext", "active", "inject"]

_ACTIVE: Optional["InjectionContext"] = None


def active() -> Optional["InjectionContext"]:
    """The ambient injection context, or None (the common case)."""
    return _ACTIVE


class InjectionContext:
    """One armed :class:`~repro.faults.FaultPlan` plus its fire ledger."""

    def __init__(self, plan):
        self.plan = plan
        #: Fault records (frozen dataclasses) that have already fired.
        self.consumed = set()
        #: Chronological log of fired faults (dicts: kind/target/cycle).
        self.fired: List[dict] = []
        self.faults_injected = 0
        self.retries = 0
        self.demotions = 0

    def record(self, fault, cycle: Optional[int], **extra) -> None:
        """Mark ``fault`` consumed and log the firing."""
        self.consumed.add(fault)
        self.faults_injected += 1
        entry = {"kind": fault.kind, "cycle": cycle}
        entry.update({k: v for k, v in vars(fault).items() if k != "kind"})
        entry.update(extra)
        self.fired.append(entry)

    def counters(self) -> dict:
        return {
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "demotions": self.demotions,
        }


@contextmanager
def inject(plan):
    """Arm ``plan`` for every engine run inside the with-block."""
    global _ACTIVE
    prev = _ACTIVE
    ctx = InjectionContext(plan)
    _ACTIVE = ctx
    try:
        yield ctx
    finally:
        _ACTIVE = prev
