"""repro.faults: deterministic fault injection and resilience.

The subsystem has three faces (tentpole of the robustness PR):

* **Injection** — :class:`FaultPlan` (a pure, seedable value) describes
  channel disturbances, kernel freezes/crashes and DRAM events;
  :func:`inject` arms it ambiently so every engine run inside the
  with-block is disturbed identically regardless of engine tier.
* **Forensics** — :func:`build_hang_report` turns a stuck engine into a
  structured :class:`~repro.fpga.errors.HangReport` (wait-for graph,
  channel pressure, analyzer verdict) attached to
  :class:`~repro.fpga.errors.DeadlockError` /
  :class:`~repro.fpga.errors.LivelockError`.
* **Recovery** — :func:`run_with_recovery` drives bounded retry with
  backoff, checkpoint/restart (:class:`MemoryCheckpoint`) and graceful
  tier demotion (:data:`DEMOTION`); ``python -m repro.faults campaign``
  sweeps seeded campaigns over the Sec. V applications.

The campaign driver lives in :mod:`repro.faults.campaign` and is *not*
imported here (it pulls in the application layer).
"""

from .forensics import build_hang_report
from .inject import FaultInjector
from .plan import (CHANNEL_FAULT_KINDS, COMPLETION_SAFE_KINDS,
                   FAULT_PLAN_SCHEMA, KERNEL_FAULT_KINDS,
                   MEMORY_FAULT_KINDS, ChannelFault, FaultPlan, KernelFault,
                   MemoryFault, flip_bits)
from .recovery import (DEMOTION, MemoryCheckpoint, RecoveryOutcome,
                       RetryPolicy, run_with_recovery)
from .runtime import InjectionContext, active, inject

__all__ = [
    "CHANNEL_FAULT_KINDS", "COMPLETION_SAFE_KINDS", "ChannelFault",
    "DEMOTION", "FAULT_PLAN_SCHEMA", "FaultInjector", "FaultPlan",
    "InjectionContext", "KERNEL_FAULT_KINDS", "KernelFault",
    "MEMORY_FAULT_KINDS", "MemoryCheckpoint", "MemoryFault",
    "RecoveryOutcome", "RetryPolicy", "active", "build_hang_report",
    "flip_bits", "inject", "run_with_recovery",
]
