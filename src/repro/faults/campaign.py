"""Seeded fault campaigns over the Sec. V applications.

A campaign sweeps deterministically generated :class:`FaultPlan`\\ s over
the four paper applications (AXPYDOT, BICG, ATAX, GEMVER) and classifies
every trial:

========================  ==================================================
outcome                   meaning
========================  ==================================================
``clean``                 no fault of the plan actually fired
``masked``                faults fired, result still bit-correct, no
                          recovery action was needed
``recovered``             the recovery ladder (retry / demotion) ran and
                          the final result is correct
``hang``                  the watchdog or deadlock detector tripped; the
                          error carries a structured
                          :class:`~repro.fpga.errors.HangReport`
``crash_unrecovered``     a transient fault escaped the retry budget (or
                          recovery was disabled)
``silent_corruption``     the run completed but the result is wrong — the
                          outcome resilience work exists to make *loud*
========================  ==================================================

Every trial rebuilds its application from scratch (fresh
:class:`~repro.host.context.FblasContext`, fresh buffers) per attempt, so
retries and demotions replay the computation exactly; the shared
:class:`~repro.faults.runtime.InjectionContext` ledger guarantees a
one-shot fault never fires twice within a trial.

The acceptance bar for the whole subsystem: **zero unexplained hangs** —
every non-clean trial must end either in a structured hang report or a
recorded recovery, never a bare timeout.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from ..fpga.errors import HangError, TransientFaultError
from ..host.context import FblasContext
from ..telemetry.ledger import correlate, mint_run_id
from .plan import FaultPlan
from .recovery import RetryPolicy, run_with_recovery
from .runtime import inject

__all__ = ["APPS", "CAMPAIGN_SCHEMA", "OUTCOMES", "run_campaign",
           "run_trial"]

#: Schema tag of :func:`run_campaign` documents.
CAMPAIGN_SCHEMA = "repro.faultcampaign/1"

OUTCOMES = ("clean", "masked", "recovered", "hang", "crash_unrecovered",
            "silent_corruption")


def _run_axpydot(mode: str, size: int, seed: int):
    from ..apps.axpydot import axpydot_reference, axpydot_streaming
    rng = np.random.default_rng(seed)
    w = rng.standard_normal(size).astype(np.float32)
    v = rng.standard_normal(size).astype(np.float32)
    u = rng.standard_normal(size).astype(np.float32)
    alpha = 1.5
    ref = axpydot_reference(w, v, u, alpha)
    ctx = FblasContext()
    res = axpydot_streaming(ctx, ctx.copy_to_device(w, name="w"),
                            ctx.copy_to_device(v, name="v"),
                            ctx.copy_to_device(u, name="u"),
                            alpha, width=4, mode=mode)
    return res.value, ref


def _run_atax(mode: str, size: int, seed: int):
    from ..apps.atax import atax_reference, atax_streaming
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((size, size)).astype(np.float32)
    x = rng.standard_normal(size).astype(np.float32)
    ref = atax_reference(a, x)
    ctx = FblasContext()
    res = atax_streaming(ctx, ctx.copy_to_device(a, name="A"),
                         ctx.copy_to_device(x, name="x"),
                         tile=4, width=4, mode=mode)
    return res.value, ref


def _run_bicg(mode: str, size: int, seed: int):
    from ..apps.bicg import bicg_reference, bicg_streaming
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((size, size)).astype(np.float32)
    p = rng.standard_normal(size).astype(np.float32)
    r = rng.standard_normal(size).astype(np.float32)
    ref = bicg_reference(a, p, r)
    ctx = FblasContext()
    res = bicg_streaming(ctx, ctx.copy_to_device(a, name="A"),
                         ctx.copy_to_device(p, name="p"),
                         ctx.copy_to_device(r, name="r"),
                         tile=4, width=4, mode=mode)
    return res.value, ref


def _run_gemver(mode: str, size: int, seed: int):
    from ..apps.gemver import gemver_reference, gemver_streaming
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((size, size)).astype(np.float32)
    vecs = {name: rng.standard_normal(size).astype(np.float32)
            for name in ("u1", "v1", "u2", "v2", "y", "z")}
    alpha, beta = 1.25, 0.75
    ref = gemver_reference(a, vecs["u1"], vecs["v1"], vecs["u2"],
                           vecs["v2"], vecs["y"], vecs["z"], alpha, beta)
    ctx = FblasContext()
    devs = {name: ctx.copy_to_device(arr, name=name)
            for name, arr in vecs.items()}
    res = gemver_streaming(ctx, ctx.copy_to_device(a, name="A"),
                           devs["u1"], devs["v1"], devs["u2"], devs["v2"],
                           devs["y"], devs["z"], alpha, beta,
                           tile=4, width=4, mode=mode)
    return res.value, ref


class AppSpec:
    """One campaign target: how to run it, and what the plan may hit."""

    def __init__(self, name: str, run: Callable,
                 channels: Sequence[str], kernels: Sequence[str],
                 buffers: Sequence[str]):
        self.name = name
        self.run = run
        self.channels = tuple(channels)
        self.kernels = tuple(kernels)
        self.buffers = tuple(buffers)


#: The four Sec. V applications and their fault-target vocabularies
#: (channel / kernel / buffer names as the streaming builders declare
#: them; GEMVER's lists span both of its sequential components).
APPS: Dict[str, AppSpec] = {
    "axpydot": AppSpec(
        "axpydot", _run_axpydot,
        channels=("w", "v", "u", "z", "beta"),
        kernels=("read_w", "read_v", "read_u", "axpy", "dot", "sink"),
        buffers=("w", "v", "u")),
    "atax": AppSpec(
        "atax", _run_atax,
        channels=("A", "A1", "A2", "x", "zeros1", "zeros2", "tmp", "y"),
        kernels=("read_A", "fanout", "read_x", "read_z1", "read_z2",
                 "gemv", "gemvT", "write_y"),
        buffers=("A", "x", "atax_y", "atax_z1", "atax_z2")),
    "bicg": AppSpec(
        "bicg", _run_bicg,
        channels=("A", "A1", "A2", "p", "r", "y_q", "y_s", "q", "s"),
        kernels=("read_A", "fanout", "read_p", "read_r", "read_zn",
                 "read_zm", "gemv", "gemvT", "write_q", "write_s"),
        buffers=("A", "p", "r", "bicg_q", "bicg_s")),
    "gemver": AppSpec(
        "gemver", _run_gemver,
        channels=("A", "B1", "B2", "B_to_mem", "B_to_gemv", "u1", "v1",
                  "u2", "v2", "y", "z", "x", "B", "zeros", "w"),
        kernels=("read_A", "read_u1", "read_v1", "read_u2", "read_v2",
                 "read_y", "read_z", "ger1", "ger2", "fanout", "gemvT",
                 "write_B", "write_x", "read_B", "read_x", "read_zeros",
                 "gemv", "write_w"),
        buffers=("A", "u1", "v1", "u2", "v2", "y", "z",
                 "gemver_B", "gemver_x", "gemver_w")),
}


def _matches(value, ref, rtol: float = 1e-3, atol: float = 1e-4) -> bool:
    if isinstance(ref, tuple):
        return all(_matches(v, r, rtol, atol) for v, r in zip(value, ref))
    return bool(np.allclose(np.asarray(value), np.asarray(ref),
                            rtol=rtol, atol=atol))


def run_trial(spec: AppSpec, seed: int, size: int = 8,
              recover: bool = True, mode: str = "event",
              n_faults: int = 0) -> dict:
    """Run one seeded fault trial of ``spec`` and classify the outcome."""
    plan = FaultPlan.generate(
        seed, channels=spec.channels, kernels=spec.kernels,
        buffers=spec.buffers, banks=4,
        n_faults=n_faults or (1 + seed % 3),
        element_horizon=max(16, size * size), cycle_horizon=64 * size)
    # One correlation id per trial: the hang reports and recovery
    # outcomes produced inside carry the same id as this row, so
    # campaign JSON joins against any concurrently recorded ledger.
    run_id = mint_run_id()
    record: dict = {
        "app": spec.name,
        "seed": seed,
        "mode": mode,
        "run_id": run_id,
        "planned_faults": len(plan),
        "plan": plan.to_dict(),
    }
    with correlate(run_id), inject(plan) as ctx:
        outcome = None
        try:
            if recover:
                out = run_with_recovery(
                    lambda m: spec.run(m, size, seed),
                    policy=RetryPolicy(), mode=mode)
                value, ref = out.result
                record["recovery"] = out.to_dict()
                recovered = out.recovered
            else:
                value, ref = spec.run(mode, size, seed)
                recovered = False
        except HangError as exc:
            outcome = "hang"
            record["error"] = type(exc).__name__
            record["explained"] = exc.report is not None
            record["hang"] = {
                "cycle": exc.cycle,
                "blocked": sorted(exc.blocked),
                "report": (exc.report.to_dict()
                           if exc.report is not None else None),
            }
        except TransientFaultError as exc:
            outcome = "crash_unrecovered"
            record["error"] = type(exc).__name__
            record["explained"] = True
        else:
            if not _matches(value, ref):
                outcome = "silent_corruption"
            elif recovered:
                outcome = "recovered"
            elif ctx.faults_injected:
                outcome = "masked"
            else:
                outcome = "clean"
            record["explained"] = True
        record["outcome"] = outcome
        record["counters"] = ctx.counters()
        record["fired"] = list(ctx.fired)
    return record


def run_campaign(seed: int = 7,
                 apps: Sequence[str] = ("atax", "axpydot", "bicg", "gemver"),
                 budget: int = 20, size: int = 8, recover: bool = True,
                 mode: str = "event") -> dict:
    """Sweep ``budget`` seeded trials round-robin over ``apps``.

    Trial ``i`` uses seed ``seed * 1000 + i``, so campaigns are exactly
    reproducible and disjoint seeds explore disjoint plans.  Returns the
    full JSON-able campaign document (schema ``repro.faultcampaign/1``).
    """
    unknown = [a for a in apps if a not in APPS]
    if unknown:
        raise ValueError(
            f"unknown app(s) {unknown}; choose from {sorted(APPS)}")
    specs = [APPS[a] for a in apps]
    trials = []
    for i in range(budget):
        spec = specs[i % len(specs)]
        trials.append(run_trial(spec, seed * 1000 + i, size=size,
                                recover=recover, mode=mode))
    summary: Dict[str, int] = {o: 0 for o in OUTCOMES}
    per_app: Dict[str, Dict[str, int]] = {
        s.name: {o: 0 for o in OUTCOMES} for s in specs}
    counters = {"faults_injected": 0, "retries": 0, "demotions": 0}
    unexplained = 0
    for t in trials:
        summary[t["outcome"]] += 1
        per_app[t["app"]][t["outcome"]] += 1
        for k in counters:
            counters[k] += t["counters"][k]
        if not t.get("explained", False):
            unexplained += 1
    return {
        "schema": CAMPAIGN_SCHEMA,
        "seed": seed,
        "apps": list(apps),
        "budget": budget,
        "size": size,
        "recover": recover,
        "mode": mode,
        "summary": summary,
        "per_app": per_app,
        "counters": counters,
        "unexplained_hangs": unexplained,
        "trials": trials,
    }


def _to_plain(obj):
    """Recursively convert numpy scalars so json.dumps accepts the doc."""
    if isinstance(obj, dict):
        return {k: _to_plain(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_plain(v) for v in obj]
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    return obj


def render_summary(doc: dict) -> str:
    """Human-readable campaign summary (the CLI's stdout)."""
    lines = [
        f"fault campaign: seed {doc['seed']}, {doc['budget']} trials over "
        f"{', '.join(doc['apps'])} "
        f"(recovery {'on' if doc['recover'] else 'off'})",
        "",
        f"{'app':<10}" + "".join(f"{o:>18}" for o in OUTCOMES),
    ]
    for app, row in doc["per_app"].items():
        lines.append(f"{app:<10}"
                     + "".join(f"{row[o]:>18}" for o in OUTCOMES))
    lines.append(f"{'total':<10}"
                 + "".join(f"{doc['summary'][o]:>18}" for o in OUTCOMES))
    c = doc["counters"]
    lines.append("")
    lines.append(f"faults injected: {c['faults_injected']}   "
                 f"retries: {c['retries']}   demotions: {c['demotions']}")
    lines.append(f"unexplained hangs: {doc['unexplained_hangs']}")
    return "\n".join(lines)
