"""Deterministic fault plans: what goes wrong, where, and exactly when.

A :class:`FaultPlan` is a *pure value*: three tuples of frozen fault
records, ordered deterministically.  :meth:`FaultPlan.generate` derives a
plan from a seed with a private :class:`random.Random` instance — no
global RNG is touched, so the same seed and target lists always produce
the same plan, and a plan serializes losslessly through
:meth:`to_dict` / :meth:`from_dict` (schema ``repro.faultplan/1``).

Fault coordinates are chosen to be *engine-mode independent*:

* channel faults key on the **cumulative push index** of a named channel
  (the n-th element ever pushed), which is identical across the dense,
  event and bulk cores;
* kernel faults key on the kernel's **work-cycle index** (its n-th
  ``Clock`` yield), again identical across cores;
* memory faults key on the simulated **cycle**, and are applied as
  "latest by cycle t" so the event core's sparse execution observes the
  same effects as the dense core's exhaustive one.

The bulk tier falls back to exact event stepping whenever a fault could
fire inside a candidate window (see :mod:`repro.fpga.bulk`), which is
what keeps all three tiers byte-identical under the same plan.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CHANNEL_FAULT_KINDS", "ChannelFault", "FAULT_PLAN_SCHEMA", "FaultPlan",
    "KERNEL_FAULT_KINDS", "KernelFault", "MEMORY_FAULT_KINDS", "MemoryFault",
    "flip_bits",
]

#: Schema tag of :meth:`FaultPlan.to_dict` documents.
FAULT_PLAN_SCHEMA = "repro.faultplan/1"

CHANNEL_FAULT_KINDS = ("corrupt", "drop", "dup")
KERNEL_FAULT_KINDS = ("freeze", "crash")
MEMORY_FAULT_KINDS = ("bitflip", "ecc", "ecc_fatal", "throttle")

#: Fault kinds that cannot prevent an otherwise-valid run from
#: completing with the same element counts (used by the differential
#: tests: drop/dup change stream lengths, crash/ecc_fatal abort runs).
COMPLETION_SAFE_KINDS = ("corrupt", "freeze", "bitflip", "ecc", "throttle")


def flip_bits(value, bit: int):
    """Flip one bit of a numeric value, preserving its type.

    Integers flip the bit directly; floats flip a bit of their IEEE-754
    representation (float32 values use the 32-bit pattern, everything
    else the 64-bit one).  This is the SEU model: a single upset in a
    register or a DRAM word.
    """
    if isinstance(value, (bool, np.bool_)):
        return not value
    if isinstance(value, (int, np.integer)):
        return type(value)(int(value) ^ (1 << (bit % 64)))
    if isinstance(value, np.float32):
        raw = np.float32(value).view(np.uint32)
        return np.uint32(int(raw) ^ (1 << (bit % 32))).view(np.float32)
    if isinstance(value, np.floating):
        raw = np.float64(value).view(np.uint64)
        return type(value)(
            np.uint64(int(raw) ^ (1 << (bit % 64))).view(np.float64))
    if isinstance(value, float):
        (raw,) = struct.unpack("<Q", struct.pack("<d", value))
        return struct.unpack("<d", struct.pack("<Q",
                                               raw ^ (1 << (bit % 64))))[0]
    # Non-numeric payloads (tests push sentinels): negate-by-identity.
    return value


@dataclass(frozen=True)
class ChannelFault:
    """Disturb the ``index``-th element ever pushed on ``channel``.

    ``corrupt`` flips bit ``bit`` of the element; ``drop`` removes it
    from the stream; ``dup`` pushes it twice.
    """

    channel: str
    index: int
    kind: str
    bit: int = 0

    def __post_init__(self):
        if self.kind not in CHANNEL_FAULT_KINDS:
            raise ValueError(f"unknown channel fault kind {self.kind!r}")
        if self.index < 0:
            raise ValueError("channel fault index must be >= 0")


@dataclass(frozen=True)
class KernelFault:
    """Disturb ``kernel`` at its ``at_cycle``-th work cycle.

    ``freeze`` stalls the kernel's pipeline for ``cycles`` extra cycles
    (its ``Clock`` is stretched); ``crash`` raises
    :class:`~repro.fpga.errors.KernelCrashError` out of the kernel body —
    the transient-fault trigger the host recovery policies respond to.
    """

    kernel: str
    at_cycle: int
    kind: str
    cycles: int = 0

    def __post_init__(self):
        if self.kind not in KERNEL_FAULT_KINDS:
            raise ValueError(f"unknown kernel fault kind {self.kind!r}")
        if self.kind == "freeze" and self.cycles < 1:
            raise ValueError("freeze fault needs cycles >= 1")
        if self.at_cycle < 0:
            raise ValueError("kernel fault at_cycle must be >= 0")


@dataclass(frozen=True)
class MemoryFault:
    """Disturb the DRAM model at simulated ``cycle``.

    ``bitflip`` flips bit ``bit`` of element ``index`` of buffer
    ``buffer`` (an SEU in a DRAM word); ``ecc`` records a *corrected* ECC
    event against the buffer's bank (counter only); ``ecc_fatal`` raises
    :class:`~repro.fpga.errors.EccError` (uncorrectable); ``throttle``
    caps the bank's per-cycle byte budget at ``factor`` of nominal for
    ``cycles`` cycles (a thermally throttled or contended bank).
    """

    kind: str
    cycle: int
    buffer: str = ""
    index: int = 0
    bit: int = 0
    bank: int = 0
    cycles: int = 0
    factor: float = 0.0

    def __post_init__(self):
        if self.kind not in MEMORY_FAULT_KINDS:
            raise ValueError(f"unknown memory fault kind {self.kind!r}")
        if self.cycle < 0:
            raise ValueError("memory fault cycle must be >= 0")
        if self.kind == "throttle":
            if self.cycles < 1:
                raise ValueError("throttle fault needs cycles >= 1")
            if not 0.0 <= self.factor < 1.0:
                raise ValueError("throttle factor must be in [0, 1)")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic disturbance schedule for one run scope."""

    seed: int = 0
    channel_faults: Tuple[ChannelFault, ...] = ()
    kernel_faults: Tuple[KernelFault, ...] = ()
    memory_faults: Tuple[MemoryFault, ...] = field(default=())

    def __len__(self) -> int:
        return (len(self.channel_faults) + len(self.kernel_faults)
                + len(self.memory_faults))

    def __bool__(self) -> bool:
        return len(self) > 0

    @classmethod
    def empty(cls, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed)

    # -- generation --------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, *,
                 channels: Sequence[str] = (),
                 kernels: Sequence[str] = (),
                 buffers: Sequence[str] = (),
                 banks: int = 1,
                 n_faults: int = 3,
                 element_horizon: int = 512,
                 cycle_horizon: int = 2048,
                 kinds: Optional[Sequence[str]] = None) -> "FaultPlan":
        """Derive a plan from ``seed`` — a pure function of its arguments.

        ``kinds`` restricts the fault vocabulary (default: every kind
        whose target list is non-empty).  ``element_horizon`` bounds
        channel push indices, ``cycle_horizon`` memory-fault cycles and
        kernel work cycles.
        """
        rng = random.Random(seed)
        allowed = list(kinds) if kinds is not None else (
            list(CHANNEL_FAULT_KINDS) + list(KERNEL_FAULT_KINDS)
            + list(MEMORY_FAULT_KINDS))
        menu = []
        for k in allowed:
            if k in CHANNEL_FAULT_KINDS and channels:
                menu.append(k)
            elif k in KERNEL_FAULT_KINDS and kernels:
                menu.append(k)
            elif k == "throttle":
                menu.append(k)
            elif k in MEMORY_FAULT_KINDS and buffers:
                menu.append(k)
        ch_faults, k_faults, m_faults = [], [], []
        seen = set()
        for _ in range(n_faults):
            if not menu:
                break
            kind = rng.choice(menu)
            if kind in CHANNEL_FAULT_KINDS:
                f = ChannelFault(
                    channel=rng.choice(list(channels)),
                    index=rng.randrange(element_horizon),
                    kind=kind,
                    bit=rng.randrange(64))
                bucket = ch_faults
            elif kind in KERNEL_FAULT_KINDS:
                f = KernelFault(
                    kernel=rng.choice(list(kernels)),
                    at_cycle=rng.randrange(cycle_horizon),
                    kind=kind,
                    cycles=rng.randrange(4, 64) if kind == "freeze" else 0)
                bucket = k_faults
            elif kind == "throttle":
                f = MemoryFault(
                    kind=kind, cycle=rng.randrange(cycle_horizon),
                    bank=rng.randrange(max(1, banks)),
                    cycles=rng.randrange(16, 128),
                    factor=rng.choice((0.0, 0.25, 0.5)))
                bucket = m_faults
            else:
                f = MemoryFault(
                    kind=kind, cycle=rng.randrange(cycle_horizon),
                    buffer=rng.choice(list(buffers)),
                    index=rng.randrange(element_horizon),
                    bit=rng.randrange(64))
                bucket = m_faults
            if f in seen:
                continue
            seen.add(f)
            bucket.append(f)
        key = lambda f: tuple(  # noqa: E731 - stable deterministic order
            (v if v is not None else "") for v in vars(f).values())
        return cls(seed=seed,
                   channel_faults=tuple(sorted(ch_faults, key=key)),
                   kernel_faults=tuple(sorted(k_faults, key=key)),
                   memory_faults=tuple(sorted(m_faults, key=key)))

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": FAULT_PLAN_SCHEMA,
            "seed": self.seed,
            "channel_faults": [vars(f).copy() for f in self.channel_faults],
            "kernel_faults": [vars(f).copy() for f in self.kernel_faults],
            "memory_faults": [vars(f).copy() for f in self.memory_faults],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(
            seed=d.get("seed", 0),
            channel_faults=tuple(ChannelFault(**f)
                                 for f in d.get("channel_faults", ())),
            kernel_faults=tuple(KernelFault(**f)
                                for f in d.get("kernel_faults", ())),
            memory_faults=tuple(MemoryFault(**f)
                                for f in d.get("memory_faults", ())),
        )

    def describe(self) -> str:
        lines = [f"fault plan (seed {self.seed}, {len(self)} faults):"]
        for f in self.channel_faults:
            lines.append(f"  channel {f.channel!r} element {f.index}: "
                         f"{f.kind}" + (f" bit {f.bit}"
                                        if f.kind == "corrupt" else ""))
        for f in self.kernel_faults:
            what = (f"freeze {f.cycles} cycles" if f.kind == "freeze"
                    else "crash")
            lines.append(f"  kernel {f.kernel!r} work cycle {f.at_cycle}: "
                         f"{what}")
        for f in self.memory_faults:
            if f.kind == "throttle":
                lines.append(
                    f"  bank {f.bank} cycles [{f.cycle}, "
                    f"{f.cycle + f.cycles}): throttle to "
                    f"{f.factor:.0%} bandwidth")
            else:
                lines.append(
                    f"  buffer {f.buffer!r} element {f.index} at cycle "
                    f"{f.cycle}: {f.kind}"
                    + (f" bit {f.bit}" if f.kind == "bitflip" else ""))
        return "\n".join(lines)
