"""Host-level recovery policies: retry, checkpoint/restart, demotion.

The recovery ladder, mirroring what a resilient FPGA host runtime does:

1. **Bounded retry with exponential backoff** on
   :class:`~repro.fpga.errors.TransientFaultError` (injected kernel
   crashes, uncorrectable ECC): the fault was transient — the one-shot
   ledger of the ambient :class:`~repro.faults.runtime.InjectionContext`
   guarantees it does not replay — so re-running the computation from
   the last quiescent state succeeds.
2. **Checkpoint/restart**: a :class:`MemoryCheckpoint` captured at a
   quiescent point (before the run, or between plan components in the
   streaming executor) restores device buffers and I/O counters before
   each retry, so a bit flipped or half-written after the checkpoint
   cannot leak into the re-run.
3. **Graceful degradation** on :class:`~repro.fpga.errors.SimulationError`
   (a livelock/timeout watchdog trip, or a bulk-window invariant
   violation): demote the engine tier ``bulk -> event -> dense`` and try
   again — the dense reference core is the last resort that trades all
   performance for maximal simplicity.

:class:`~repro.fpga.errors.DeadlockError` is deliberately **not**
recovered: a deadlock is a deterministic property of the composition
(Sec. V), so it propagates immediately with its
:class:`~repro.fpga.errors.HangReport` attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..fpga.errors import (DeadlineExceeded, DeadlockError, SimulationError,
                           TransientFaultError)
from ..telemetry.ledger import current_run_id
from .metrics import DEMOTIONS, RETRIES, count
from .runtime import active as _faults_active

__all__ = ["DEMOTION", "MemoryCheckpoint", "RecoveryOutcome", "RetryPolicy",
           "run_with_recovery"]

#: The degradation ladder: which tier a failing mode falls back to.
DEMOTION = {"bulk": "event", "event": "dense"}


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the recovery ladder."""

    #: Retries after transient faults (shared budget across the ladder).
    max_retries: int = 2
    #: First backoff delay, in seconds (recorded always, slept only
    #: when ``sleep`` is True — simulations should not wall-clock wait).
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    sleep: bool = False
    #: Demote the engine tier on SimulationError (watchdog/fast-path).
    demote: bool = True


@dataclass
class RecoveryOutcome:
    """What the recovery ladder did to produce (or fail) a result."""

    result: object = None
    #: The engine mode that finally succeeded (or last tried).
    mode: str = "event"
    retries: int = 0
    demotions: int = 0
    #: Chronological action log: dicts with ``action`` ("retry" |
    #: "demote"), the triggering error type, and backoff/mode details.
    actions: List[Dict] = field(default_factory=list)
    #: Correlation id of the request the ladder ran under (the ambient
    #: :func:`repro.telemetry.ledger.current_run_id` when recovery
    #: started), joining this outcome against its run-ledger record.
    run_id: Optional[str] = None

    @property
    def recovered(self) -> bool:
        """True when the run needed (and survived) recovery actions."""
        return bool(self.actions)

    def to_dict(self) -> dict:
        doc = {
            "mode": self.mode,
            "retries": self.retries,
            "demotions": self.demotions,
            "recovered": self.recovered,
            "actions": list(self.actions),
        }
        # Correlated only under a telemetry session; uncorrelated
        # outcomes keep their pre-ledger shape.
        if self.run_id is not None:
            doc["run_id"] = self.run_id
        return doc


class MemoryCheckpoint:
    """Snapshot of a :class:`~repro.fpga.memory.DramModel` at a quiescent
    point, restorable before a retry.

    Captures buffer contents and per-buffer I/O counters *in place*
    (restore writes into the existing arrays, so kernels and patterns
    holding views keep aliasing the same storage) plus the bank traffic
    counters, so a restored-and-rerun attempt produces the same
    statistics a clean first run would have.
    """

    def __init__(self, mem):
        self.mem = mem
        self._data = {name: buf.data.copy()
                      for name, buf in mem.buffers.items()}
        self._io = {name: (buf.elements_read, buf.elements_written)
                    for name, buf in mem.buffers.items()}
        self._banks = [(b.bytes_read, b.bytes_written, b.denied_cycles,
                        b.busy_cycles, b.ecc_events)
                       for b in mem.bank_stats]

    @classmethod
    def capture(cls, mem) -> Optional["MemoryCheckpoint"]:
        return cls(mem) if mem is not None else None

    def restore(self) -> None:
        mem = self.mem
        for name, saved in self._data.items():
            buf = mem.buffers.get(name)
            if buf is not None:
                buf.data[...] = saved
        for name, (r, w) in self._io.items():
            buf = mem.buffers.get(name)
            if buf is not None:
                buf.elements_read = r
                buf.elements_written = w
        for b, (r, w, d, u, e) in zip(mem.bank_stats, self._banks):
            b.bytes_read, b.bytes_written = r, w
            b.denied_cycles, b.busy_cycles, b.ecc_events = d, u, e


def run_with_recovery(attempt: Callable[[str], object],
                      policy: Optional[RetryPolicy] = None,
                      mode: str = "event",
                      restore: Optional[Callable[[], None]] = None,
                      deadline_s: Optional[float] = None,
                      clock: Callable[[], float] = time.monotonic,
                      ) -> RecoveryOutcome:
    """Drive ``attempt(mode)`` through the recovery ladder.

    ``attempt`` must rebuild its design from scratch on every call (the
    host API and executor rebuild kernels per invocation, so generators
    are never resumed twice).  ``restore`` — typically a
    :meth:`MemoryCheckpoint.restore` — is invoked before every re-run.
    Unrecoverable errors (deadlocks, exhausted retry budget, dense-tier
    failures) propagate to the caller.

    ``deadline_s`` bounds the **total wall-clock time across retries**:
    before the first attempt and before every re-attempt the elapsed
    time (per ``clock``, injectable for tests) is checked against the
    deadline, and an expired budget raises
    :class:`~repro.fpga.errors.DeadlineExceeded` — chained to the error
    that triggered the re-attempt, so forensics keep the root cause.  A
    completed attempt is never discarded: the deadline stops *further
    recovery work*, it does not throw away a result that arrived late.
    The ledger classifies the outcome as ``"deadline"``, distinct from
    ``"deadlock"`` (a deterministic design property) — one is a policy
    budget, the other a proof.
    """
    policy = policy or RetryPolicy()
    out = RecoveryOutcome(mode=mode, run_id=current_run_id())
    budget = policy.max_retries
    delay = policy.backoff_base
    ctx = _faults_active()
    t0 = clock()

    def check_deadline(cause: Optional[BaseException]) -> None:
        if deadline_s is None:
            return
        elapsed = clock() - t0
        if elapsed >= deadline_s:
            out.actions.append({
                "action": "deadline", "mode": out.mode,
                "deadline_s": deadline_s, "elapsed_s": elapsed,
                "error": type(cause).__name__ if cause else None,
            })
            raise DeadlineExceeded(
                f"recovery deadline of {deadline_s:g}s exhausted after "
                f"{elapsed:.3f}s ({out.retries} retries, "
                f"{out.demotions} demotions)",
                deadline_s=deadline_s, elapsed_s=elapsed) from cause

    check_deadline(None)
    while True:
        try:
            out.result = attempt(out.mode)
            return out
        except DeadlockError:
            raise                       # deterministic; never retried
        except TransientFaultError as exc:
            if budget <= 0:
                raise
            check_deadline(exc)
            budget -= 1
            out.retries += 1
            out.actions.append({
                "action": "retry", "mode": out.mode,
                "error": type(exc).__name__, "backoff_s": delay,
            })
            count(RETRIES, error=type(exc).__name__)
            if ctx is not None:
                ctx.retries += 1
            if policy.sleep:            # pragma: no cover - wall clock
                time.sleep(delay)
            delay *= policy.backoff_factor
            if restore is not None:
                restore()
        except SimulationError as exc:
            nxt = DEMOTION.get(out.mode)
            if not policy.demote or nxt is None:
                raise
            check_deadline(exc)
            out.demotions += 1
            out.actions.append({
                "action": "demote", "from": out.mode, "to": nxt,
                "error": type(exc).__name__,
            })
            count(DEMOTIONS, to=nxt)
            if ctx is not None:
                ctx.demotions += 1
            out.mode = nxt
            if restore is not None:
                restore()
