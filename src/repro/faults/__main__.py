"""CLI: ``python -m repro.faults campaign --seed 7 --apps atax,axpydot``.

Runs a seeded fault campaign over the Sec. V applications, prints the
outcome table, and (with ``--out``) writes the full JSON document
(schema ``repro.faultcampaign/1``) for CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys

from .campaign import APPS, _to_plain, render_summary, run_campaign


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="deterministic fault-injection campaigns")
    sub = parser.add_subparsers(dest="command", required=True)
    camp = sub.add_parser(
        "campaign", help="sweep seeded fault plans over the Sec. V apps")
    camp.add_argument("--seed", type=int, default=7,
                      help="campaign seed (trial i uses seed*1000+i)")
    camp.add_argument("--apps", default="atax,axpydot,bicg,gemver",
                      help=f"comma-separated subset of {sorted(APPS)}")
    camp.add_argument("--budget", type=int, default=20,
                      help="number of fault trials (round-robin over apps)")
    camp.add_argument("--n", type=int, default=8,
                      help="problem size (vectors length n, matrices n x n)")
    camp.add_argument("--mode", default="event",
                      choices=("dense", "event", "bulk"),
                      help="starting engine tier (demotion may lower it)")
    camp.add_argument("--no-recover", action="store_true",
                      help="disable the retry/demotion recovery ladder")
    camp.add_argument("--out", default=None,
                      help="write the full JSON campaign report here")
    args = parser.parse_args(argv)

    doc = run_campaign(seed=args.seed,
                       apps=tuple(a.strip() for a in args.apps.split(",")
                                  if a.strip()),
                       budget=args.budget, size=args.n,
                       recover=not args.no_recover, mode=args.mode)
    print(render_summary(doc))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(_to_plain(doc), fh, indent=2)
        print(f"\nfull report written to {args.out}")
    return 1 if doc["unexplained_hangs"] else 0


if __name__ == "__main__":
    sys.exit(main())
