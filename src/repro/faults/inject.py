"""The fault injector: arms a plan's faults on one engine for one run.

:class:`FaultInjector` is created by :meth:`Engine._run` (from the
engine's ``fault_plan`` or the ambient :func:`repro.faults.inject`
context) and attached for the duration of the run.  It implements the
three hook surfaces the fpga layer exposes:

* ``Channel.fault_hook.on_push``: corrupt / drop / duplicate the n-th
  element ever pushed on a named channel (the injector keeps its own
  per-channel cursor, advanced by the *original* element count, so the
  coordinate is identical across engine tiers and unaffected by earlier
  drops/dups);
* ``Kernel`` body wrapping: freeze (stretch a ``Clock``) or crash
  (raise :class:`~repro.fpga.errors.KernelCrashError`) at the kernel's
  n-th work cycle;
* ``DramModel.fault_hook.on_memory_cycle``: at each *executed* cycle,
  apply every due one-shot memory fault (bit flips in buffer words, ECC
  events — fatal ones raise :class:`~repro.fpga.errors.EccError`) and
  cap throttled banks' budgets.  "Apply everything due" at executed
  cycles gives dense/event parity for free: grants only ever happen on
  executed cycles, and both cores execute exactly the cycles on which a
  kernel could act.

The bulk tier stays exact by construction: faulted kernels lose their
pattern (``wrap_body``), pending channel faults veto the superstep
precheck, and replay windows are clamped so every memory-fault cycle is
an executed cycle (see :mod:`repro.fpga.bulk`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..fpga.errors import EccError, KernelCrashError
from ..fpga.kernel import Clock
from ..telemetry.runtime import active as _telemetry_active
from .metrics import FAULTS_INJECTED, count
from .plan import FaultPlan, flip_bits
from .runtime import InjectionContext

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms one :class:`FaultPlan` on one engine run."""

    def __init__(self, plan: FaultPlan, engine,
                 ctx: Optional[InjectionContext] = None):
        self.plan = plan
        self.engine = engine
        # Without an ambient context the ledger is private to this run:
        # every one-shot fault fires (at most) once in it.
        self.ctx = ctx if ctx is not None else InjectionContext(plan)
        consumed = self.ctx.consumed
        # Per-channel fault queues (by cumulative push index) and the
        # push-index cursors, for channels this engine actually owns.
        self._chan_queues: Dict[str, List] = {}
        self._cursor: Dict[str, int] = {}
        for f in plan.channel_faults:
            if f not in consumed and f.channel in engine.channels:
                self._chan_queues.setdefault(f.channel, []).append(f)
        for q in self._chan_queues.values():
            q.sort(key=lambda f: f.index)
        # Per-kernel fault lists (by work-cycle index).
        self._kernel_faults: Dict[str, List] = {}
        for f in plan.kernel_faults:
            if f not in consumed and f.kernel in engine.kernels:
                self._kernel_faults.setdefault(f.kernel, []).append(f)
        # One-shot memory events (applied in cycle order at executed
        # cycles) and throttle windows (never ledgered — they are
        # windows in simulated time, re-applied on every run).
        self._mem_queue: List = []
        self._throttles: List = []
        if engine.memory is not None:
            for f in plan.memory_faults:
                if f.kind == "throttle":
                    self._throttles.append(f)
                elif f not in consumed:
                    self._mem_queue.append(f)
            self._mem_queue.sort(key=lambda f: f.cycle)

    # -- lifecycle ----------------------------------------------------------
    def attach(self) -> None:
        eng = self.engine
        for name in self._chan_queues:
            ch = eng.channels[name]
            ch.fault_hook = self
            self._cursor[name] = 0
        for name, faults in self._kernel_faults.items():
            k = eng.kernels[name]
            if not k.done:
                k.wrap_body(lambda body, _n=name, _f=faults:
                            self._faulted_body(_n, body, _f))
        if (self._mem_queue or self._throttles) and eng.memory is not None:
            eng.memory.fault_hook = self

    def detach(self) -> None:
        eng = self.engine
        for name in self._chan_queues:
            ch = eng.channels.get(name)
            if ch is not None and ch.fault_hook is self:
                ch.fault_hook = None
        if eng.memory is not None and eng.memory.fault_hook is self:
            eng.memory.fault_hook = None

    def _note(self, fault, cycle: Optional[int], **extra) -> None:
        self.ctx.record(fault, cycle, **extra)
        count(FAULTS_INJECTED, kind=fault.kind)
        tel = _telemetry_active()
        if tel is not None:
            tel.instant(f"fault:{fault.kind}", cycle=cycle, **extra)

    # -- channel faults (Channel.push hook) ---------------------------------
    def on_push(self, ch, values):
        """Disturb ``values`` per the channel's due faults; return the
        (possibly re-sized) element sequence to stage."""
        q = self._chan_queues.get(ch.name)
        base = self._cursor[ch.name]
        n = len(values)
        self._cursor[ch.name] = base + n
        if not q or q[0].index >= base + n:
            return values
        out = list(values)
        hits = [f for f in q if base <= f.index < base + n]
        # Apply highest index first so a drop/dup cannot shift the
        # position of a lower-indexed hit within the same push.
        for f in sorted(hits, key=lambda f: -f.index):
            q.remove(f)
            j = f.index - base
            cyc = self.engine.now
            if j >= len(out):
                # A drop at the same index already removed the element
                # this fault targeted; there is nothing left to disturb.
                self._note(f, cyc, channel=ch.name, index=f.index,
                           voided=True)
                continue
            if f.kind == "corrupt":
                out[j] = flip_bits(out[j], f.bit)
            elif f.kind == "drop":
                del out[j]
            else:                       # dup
                out.insert(j, out[j])
            self._note(f, cyc, channel=ch.name, index=f.index)
        return out

    def pending(self, ch) -> bool:
        """True while unfired faults remain for ``ch`` — the bulk tier
        must event-step this channel until they have all fired."""
        return bool(self._chan_queues.get(ch.name))

    # -- kernel faults (body wrapper) ---------------------------------------
    def _faulted_body(self, kname: str, body, faults):
        queue = sorted(faults, key=lambda f: f.at_cycle)
        inj = self

        def gen():
            work = 0                    # completed work cycles
            send_val = None
            while True:
                try:
                    op = body.send(send_val)
                except StopIteration:
                    return
                if isinstance(op, Clock):
                    extra = 0
                    while queue and queue[0].at_cycle < work + op.cycles:
                        f = queue.pop(0)
                        cyc = inj.engine.now
                        if f.kind == "crash":
                            inj._note(f, cyc, kernel=kname,
                                      work_cycle=f.at_cycle)
                            raise KernelCrashError(kname, f.at_cycle)
                        extra += f.cycles
                        inj._note(f, cyc, kernel=kname,
                                  work_cycle=f.at_cycle, frozen=f.cycles)
                    work += op.cycles
                    if extra:
                        send_val = yield Clock(op.cycles + extra)
                    else:
                        send_val = yield op
                else:
                    send_val = yield op

        return gen()

    # -- memory faults (DramModel.begin_cycle hook) -------------------------
    def on_memory_cycle(self, mem, cycle: int) -> None:
        queue = self._mem_queue
        while queue and queue[0].cycle <= cycle:
            f = queue.pop(0)
            buf = mem.buffers.get(f.buffer)
            if buf is None:
                continue                # target absent in this design
            bank = buf.bank
            if f.kind == "bitflip":
                flat = buf.data.reshape(-1)
                idx = f.index % buf.num_elements
                flat[idx] = flip_bits(flat[idx], f.bit)
                self._note(f, cycle, buffer=f.buffer, index=idx)
            else:                       # ecc / ecc_fatal
                if bank is not None:
                    mem.bank_stats[bank].ecc_events += 1
                self._note(f, cycle, buffer=f.buffer, bank=bank)
                if f.kind == "ecc_fatal":
                    raise EccError(f.buffer, bank, cycle)
        for f in self._throttles:
            if f.cycle <= cycle < f.cycle + f.cycles:
                cap = int(mem.bytes_per_cycle * f.factor)
                bank = f.bank % mem.num_banks
                cut = mem._budget[bank] - cap
                if cut > 0:
                    mem._budget[bank] = cap
                    mem._pool_budget = max(0, mem._pool_budget - cut)
                if f not in self.ctx.consumed:
                    # Log the window once per context (not per cycle);
                    # it still caps budgets on every cycle of every run.
                    self._note(f, cycle, bank=bank, cycles=f.cycles,
                               factor=f.factor)

    def throttle_active(self, cycle: int) -> bool:
        return any(f.cycle <= cycle < f.cycle + f.cycles
                   for f in self._throttles)

    def next_memory_event(self, after: int) -> Optional[int]:
        """Earliest memory-fault boundary the bulk tier must execute as a
        real cycle: the next unapplied one-shot event (which may already
        be due), or a throttle window edge at/after ``after``.

        Edges are inclusive of ``after`` itself: a replay window starts
        one cycle past the probed fingerprint, so a throttle beginning
        exactly at the window start would otherwise slip inside it and
        be fast-forwarded at full bandwidth."""
        best = self._mem_queue[0].cycle if self._mem_queue else None
        for f in self._throttles:
            for edge in (f.cycle, f.cycle + f.cycles):
                if edge >= after and (best is None or edge < best):
                    best = edge
        return best
