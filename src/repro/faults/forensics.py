"""Hang forensics: turn a stuck engine into a structured explanation.

:func:`build_hang_report` is called (lazily, best-effort) by all three
engine cores at the moment a :class:`~repro.fpga.errors.DeadlockError`
or :class:`~repro.fpga.errors.LivelockError` is raised.  It assembles

* one :class:`~repro.fpga.errors.KernelState` per kernel (blocked op,
  elements wanted vs available, blocked-since cycle, activity counters),
* the *wait-for graph*: blocked kernel → the kernel whose action could
  unblock it (the producer of the channel it pops from; the consumer of
  the channel it pushes to).  Edges come from the kernels' static port
  annotations where available, and from the other kernels' live blocked
  states otherwise — an unannotated design still gets the edges its
  blocked endpoints reveal;
* the cycles of that graph (each one a circular-wait certificate — the
  classic deadlock witness for the paper's invalid reconvergent
  compositions);
* per-channel pressure (fullest/emptiest FIFOs), and
* the static analyzer's verdict (FBxxx diagnostics) when any kernel is
  annotated — so an undersized-depth deadlock arrives with the FB003
  proof attached.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..fpga.errors import ChannelPressure, HangReport, KernelState
from ..telemetry.ledger import current_run_id

__all__ = ["build_hang_report"]


def _kernel_state(k, cycle: int) -> KernelState:
    b = k.blocked
    if k.done:
        state, channel, wants, avail, since = "done", None, 0, 0, None
    elif b is not None:
        if b.kind == "pop":
            state = "blocked-pop"
            wants = b.op.count
            avail = b.channel.occupancy
        else:
            state = "blocked-push"
            wants = len(b.op.values)
            avail = b.channel.space()
        channel, since = b.channel.name, b.since
    elif k.sleep_until > cycle:
        state, channel, wants, avail, since = "sleeping", None, 0, 0, None
    elif k.stats.start_cycle is None:
        state, channel, wants, avail, since = "not-started", None, 0, 0, None
    else:
        state, channel, wants, avail, since = "runnable", None, 0, 0, None
    return KernelState(
        kernel=k.name, state=state, channel=channel, wants=wants,
        available=avail, since=since,
        stall_cycles=k.stats.stall_cycles,
        active_cycles=k.stats.active_cycles)


def _port_maps(kernels) -> Tuple[Dict, Dict]:
    """Channel -> producer/consumer kernel-name sets, from annotations
    plus live blocked states."""
    producers: Dict[object, Set[str]] = {}
    consumers: Dict[object, Set[str]] = {}
    for k in kernels:
        for ch in k.reads:
            consumers.setdefault(ch, set()).add(k.name)
        for wp in k.writes:
            producers.setdefault(wp.channel, set()).add(k.name)
        b = k.blocked
        if b is not None:
            side = consumers if b.kind == "pop" else producers
            side.setdefault(b.channel, set()).add(k.name)
    return producers, consumers


def _wait_edges(kernels) -> List[Tuple[str, str, str]]:
    producers, consumers = _port_maps(kernels)
    edges = []
    seen = set()
    for k in kernels:
        b = k.blocked
        if k.done or b is None:
            continue
        # A pop waits on the channel's producers; a push on its consumers.
        others = (producers if b.kind == "pop" else consumers).get(
            b.channel, ())
        for name in sorted(others):
            if name == k.name:
                continue
            e = (k.name, name, b.channel.name)
            if e not in seen:
                seen.add(e)
                edges.append(e)
    return edges


def _find_cycles(edges: List[Tuple[str, str, str]]) -> List[List[str]]:
    """Distinct simple cycles in the wait-for graph (DFS back-edges,
    deduplicated by rotation-normalised node set)."""
    adj: Dict[str, List[str]] = {}
    for a, b, _ch in edges:
        adj.setdefault(a, []).append(b)
    cycles: List[List[str]] = []
    found: Set[Tuple[str, ...]] = set()

    def dfs(node: str, path: List[str], on_path: Set[str]):
        for nxt in adj.get(node, ()):
            if nxt in on_path:
                cyc = path[path.index(nxt):]
                # Normalise rotation so each cycle is reported once.
                pivot = cyc.index(min(cyc))
                norm = tuple(cyc[pivot:] + cyc[:pivot])
                if norm not in found:
                    found.add(norm)
                    cycles.append(list(norm))
            elif nxt not in visited:
                visited.add(nxt)
                path.append(nxt)
                on_path.add(nxt)
                dfs(nxt, path, on_path)
                on_path.discard(nxt)
                path.pop()

    visited: Set[str] = set()
    for start in sorted(adj):
        if start not in visited:
            visited.add(start)
            dfs(start, [start], {start})
    return cycles


def _reason(kind: str, kernels) -> str:
    blocked = sum(1 for k in kernels if not k.done and k.blocked is not None)
    live = sum(1 for k in kernels if not k.done)
    if kind == "deadlock":
        return (f"no kernel can make progress "
                f"({blocked}/{live} live kernels blocked on channels)")
    if kind == "livelock":
        return (f"kernels keep executing but no channel element moved for "
                f"the whole progress window ({live} live kernels)")
    return f"cycle budget exhausted with {live} kernels still live"


def build_hang_report(engine, cycle: int, kind: str,
                      reason: str = "") -> HangReport:
    """Assemble the :class:`HangReport` for a hung ``engine``."""
    kernels = list(engine.kernels.values())
    states = [_kernel_state(k, cycle) for k in kernels]
    edges = _wait_edges(kernels)
    report = HangReport(
        kind=kind,
        cycle=cycle,
        reason=reason or _reason(kind, kernels),
        kernels=states,
        wait_for=edges,
        wait_cycles=_find_cycles(edges),
        channels=[ChannelPressure(ch.name, ch.occupancy, ch.in_flight,
                                  ch.depth)
                  for ch in engine.channels.values()],
        run_id=current_run_id(),
    )
    if any(k.annotated for k in kernels):
        try:
            from ..analysis import analyze_engine
            result = analyze_engine(engine)
            report.analysis = [d.to_dict() for d in result.diagnostics]
        except Exception:       # pragma: no cover - verdict is best-effort
            pass
    return report
