"""Resilience counter names/help strings, shared by injector and policies.

The counters live in whatever :class:`~repro.telemetry.metrics.MetricsRegistry`
is observing — the ambient telemetry session's when one is active — so a
campaign run under ``telemetry.session()`` exports ``faults_injected``,
``retries`` and ``demotions`` alongside the engine metrics.
"""

from __future__ import annotations

from ..telemetry.runtime import active as telemetry_active

__all__ = ["DEMOTIONS", "FAULTS_INJECTED", "RETRIES", "count"]

FAULTS_INJECTED = ("faults_injected",
                   "fault-plan records that fired, by kind")
RETRIES = ("retries", "recovery retries after transient faults")
DEMOTIONS = ("demotions", "engine-tier demotions (bulk->event->dense)")


def count(metric, value: float = 1, **labels) -> None:
    """Increment a resilience counter on the active telemetry session.

    No-op without a session — the injector and recovery policies keep
    their own tallies in the :class:`~repro.faults.runtime.InjectionContext`
    and :class:`~repro.faults.recovery.RecoveryOutcome` regardless.
    """
    tel = telemetry_active()
    if tel is not None:
        name, help_ = metric
        tel.registry.counter(name, help_).inc(value, **labels)
